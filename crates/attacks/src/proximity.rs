//! The network-flow proximity attack of Wang et al. (DAC'16).
//!
//! The attacker holds the FEOL: all gates, the placement, wiring up to the
//! split layer, and the dangling via stacks (vpins) of every cut net. The
//! attack reconnects each sink vpin to a driver vpin by minimizing a cost
//! combining the hints the paper lists:
//!
//! 1. physical proximity of the dangling pins,
//! 2. avoidance of combinational loops (a loop would be an invalid design),
//! 3. load-capacitance constraints (a driver's fanout capacitance should
//!    stay plausible for its drive strength),
//! 4. the direction of dangling wires (the FEOL stub points toward the
//!    BEOL continuation).
//!
//! Pairs are committed globally-cheapest-first (the practical equivalent of
//! the min-cost-flow rounds in the original attack), re-checking loops
//! against connections committed so far.

use crate::grid::CellGrid;
use sm_exec::{Budget, CancelToken, Pool};
use sm_layout::{Placement, Point, SplitLayout, VpinSide};
use sm_netlist::graph::{would_create_cycle_with, ReachScratch};
use sm_netlist::{Netlist, Sink};
use sm_sim::{security_metrics, PatternSource, SecurityMetrics};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Tunables of the proximity attack.
///
/// Penalties are multiplicative so the attack behaves identically on a
/// 3 µm toy die and a millimeter-scale superblue die.
#[derive(Debug, Clone)]
pub struct ProximityConfig {
    /// Weight of the Manhattan distance term (cost per µm).
    pub distance_weight: f64,
    /// Multiplier applied to the distance when the driver's dangling stub
    /// points away from the candidate sink (1.0 disables the hint).
    pub direction_factor: f64,
    /// Capacitive load (fF) a driver is expected to support before the
    /// load hint starts penalizing further fanout.
    pub load_budget_ff: f64,
    /// Distance multiplier per fF of load-budget excess.
    pub load_factor_per_ff: f64,
    /// Patterns used to score OER/HD of the recovered netlist.
    pub eval_patterns: usize,
    /// Candidate drivers kept per sink in the flow network (pruning).
    pub candidates_per_sink: usize,
    /// Seed of the OER/HD evaluation RNG. `None` falls back to hashing
    /// the netlist name (the historical behavior); campaigns pass the
    /// job's derived seed so seed sweeps explore attack variance.
    pub eval_seed: Option<u64>,
}

impl Default for ProximityConfig {
    fn default() -> Self {
        ProximityConfig {
            distance_weight: 1.0,
            direction_factor: 1.5,
            load_budget_ff: 12.0,
            load_factor_per_ff: 0.25,
            eval_patterns: 65_536,
            candidates_per_sink: 24,
            eval_seed: None,
        }
    }
}

/// Everything the attack produces.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Committed `(driver_vpin, sink_vpin)` pairs.
    pub pairs: Vec<(usize, usize)>,
    /// Correct connection rate over the cut sinks (the paper's CCR).
    pub ccr: f64,
    /// The netlist the attacker reconstructed.
    pub recovered: Netlist,
    /// OER and HD of the recovered netlist against the true design.
    pub metrics: SecurityMetrics,
}

/// The min-cost-flow instance the attack builds for a split layout:
/// `source → drivers (load-hint capacities) → sinks (unit demand) →
/// target`, with the K cheapest candidate drivers per sink. One
/// construction serves both [`network_flow_attack`] and the
/// differential harness, so the tested network is always exactly the
/// attacked one.
#[derive(Debug, Clone)]
pub(crate) struct AssignmentInstance {
    /// Node count (`2 + drivers + sinks`).
    pub nodes: usize,
    /// Source node id.
    pub source: usize,
    /// Target node id.
    pub target: usize,
    /// Units to route: one per sink vpin.
    pub demand: i64,
    /// Directed edges `(from, to, cap, cost)` in insertion order; feed
    /// them to an engine's `add_edge` in this order and keep the
    /// returned handles to read flows back per [`Self::sink_edges`].
    pub edges: Vec<(usize, usize, i64, i64)>,
    /// Per sink: `(edge index into `edges`, driver vpin)` of its
    /// candidate edges, cheapest first.
    pub sink_edges: Vec<Vec<(usize, usize)>>,
    /// Sink vpin indices, in flow-node order.
    pub sinks: Vec<usize>,
    /// Per sink: the scored `(cost, driver vpin)` top-K candidates.
    pub candidates: Vec<Vec<(i64, usize)>>,
}

impl AssignmentInstance {
    /// [`Self::build_with`] on a serial slice of the shared global pool
    /// (the differential tests' reference configuration).
    #[cfg(test)]
    fn build(
        placed: &Netlist,
        split: &SplitLayout,
        config: &ProximityConfig,
    ) -> AssignmentInstance {
        Self::build_with(
            placed,
            split,
            config,
            &Budget::on_pool(Arc::clone(Pool::global()), 1),
        )
    }

    /// Scores candidates and wires the flow network (see the type docs).
    ///
    /// Candidate scoring — the attack's dominant cost on superblue-scale
    /// layouts — runs as a data-parallel sweep over the sinks on `exec`
    /// ([`Budget::map`] keeps the reduction order-stable and the live
    /// workers within the budget), each sink probing a [`CellGrid`] over
    /// the flattened driver geometry in expanding rings. A ring is
    /// abandoned only when its distance lower bound *strictly* exceeds
    /// the current K-th best `(cost, driver)` key, so the selected top-K
    /// lists are bit-identical to the full sink × driver scan (pinned by
    /// the `scoring_differential` tests below).
    pub(crate) fn build_with(
        placed: &Netlist,
        split: &SplitLayout,
        config: &ProximityConfig,
        exec: &Budget,
    ) -> AssignmentInstance {
        let drivers = split.feol.driver_vpins();
        let sinks = split.feol.sink_vpins();

        // Candidate edges: the K cheapest drivers per sink (standard
        // pruning; distant drivers never win the global optimum anyway).
        // Driver geometry is flattened into one contiguous arena up
        // front; the grid stores indices into it.
        let k = config.candidates_per_sink.max(1);
        let driver_geom: Vec<(Point, Option<(i8, i8)>)> = drivers
            .iter()
            .map(|&d| {
                let v = &split.feol.vpins[d];
                (v.position, v.stub_direction)
            })
            .collect();
        // The ring lower bound multiplies the distance floor by the
        // config factors a pair cost can never drop below; hostile
        // configurations (negative weights, NaN) fall back to the full
        // scan instead of pruning.
        let base_mult = 1.0 + (0.0 - config.load_budget_ff).max(0.0) * config.load_factor_per_ff;
        let lb_mult = config.distance_weight * config.direction_factor.min(1.0) * base_mult;
        let prunable = config.distance_weight >= 0.0
            && config.direction_factor >= 0.0
            && base_mult >= 0.0
            && lb_mult >= 0.0;
        let candidates: Vec<Vec<(i64, usize)>> = if !prunable {
            sinks
                .iter()
                .map(|&s| {
                    score_sink_full(
                        split.feol.vpins[s].position,
                        &drivers,
                        &driver_geom,
                        k,
                        config,
                    )
                })
                .collect()
        } else {
            let points: Vec<(i64, i64)> =
                driver_geom.iter().map(|&(pos, _)| (pos.x, pos.y)).collect();
            let grid = CellGrid::build(&points);
            let score = |&s: &usize| {
                score_sink_grid(
                    split.feol.vpins[s].position,
                    &grid,
                    &drivers,
                    &driver_geom,
                    k,
                    config,
                    lb_mult,
                )
            };
            if exec.threads() > 1 && sinks.len() >= 64 {
                exec.map(&sinks, |_, s| score(s))
            } else {
                sinks.iter().map(score).collect()
            }
        };

        // Driver capacities from the load hint; if the hint
        // underestimates, scale so a full assignment exists (the cost
        // structure still favors light loads).
        let d_index: std::collections::HashMap<usize, usize> =
            drivers.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let nodes = 2 + drivers.len() + sinks.len();
        let (source, target) = (0usize, nodes - 1);
        let d_node = |i: usize| 1 + i;
        let s_node = |i: usize| 1 + drivers.len() + i;
        let mut caps: Vec<i64> = drivers
            .iter()
            .map(|&d| driver_capacity(placed, split, d, config))
            .collect();
        let total_cap: i64 = caps.iter().sum();
        if total_cap < sinks.len() as i64 && !caps.is_empty() {
            let scale = (sinks.len() as i64 + total_cap - 1) / total_cap.max(1) + 1;
            for c in &mut caps {
                *c *= scale;
            }
        }
        let mut edges: Vec<(usize, usize, i64, i64)> = Vec::new();
        for (i, &cap) in caps.iter().enumerate() {
            edges.push((source, d_node(i), cap, 0));
        }
        let mut sink_edges: Vec<Vec<(usize, usize)>> = Vec::with_capacity(sinks.len());
        for (si, row) in candidates.iter().enumerate() {
            let mut handles = Vec::with_capacity(row.len());
            for &(cost, d) in row {
                handles.push((edges.len(), d));
                edges.push((d_node(d_index[&d]), s_node(si), 1, cost.max(0)));
            }
            edges.push((s_node(si), target, 1, 0));
            sink_edges.push(handles);
        }
        AssignmentInstance {
            nodes,
            source,
            target,
            demand: sinks.len() as i64,
            edges,
            sink_edges,
            sinks,
            candidates,
        }
    }
}

/// Runs the network-flow attack.
///
/// * `golden` — the true design (scoring reference for OER/HD).
/// * `placed` — the netlist that was actually placed and routed (equals
///   `golden` for unprotected/prior-art layouts; the *erroneous* netlist
///   for the proposed defense).
/// * `placement` / `split` — the attacked FEOL.
///
/// # Panics
///
/// Panics if `split` was not derived from `placed` (vpin sink references
/// must resolve in `placed`).
pub fn network_flow_attack(
    golden: &Netlist,
    placed: &Netlist,
    placement: &Placement,
    split: &SplitLayout,
    config: &ProximityConfig,
) -> AttackOutcome {
    network_flow_attack_cancellable(
        golden,
        placed,
        placement,
        split,
        config,
        &CancelToken::new(),
    )
    .expect("a fresh token never cancels")
}

/// [`network_flow_attack`] with a cooperative [`CancelToken`], consulted
/// at the attack's deterministic phase boundaries — before the candidate
/// scoring pass, between the min-cost-flow engine's scaling phases (see
/// [`MinCostFlow::run_interruptible`](crate::mcmf::MinCostFlow::run_interruptible)),
/// and before the OER/HD evaluation. A deadlined superblue-scale job
/// therefore stops within one phase of its deadline instead of
/// overshooting by the whole attack; an attack that *completes* is
/// bit-identical whether or not the token was armed. Returns `None`
/// once cancelled.
pub fn network_flow_attack_cancellable(
    golden: &Netlist,
    placed: &Netlist,
    placement: &Placement,
    split: &SplitLayout,
    config: &ProximityConfig,
    cancel: &CancelToken,
) -> Option<AttackOutcome> {
    network_flow_attack_traced(
        golden,
        placed,
        placement,
        split,
        config,
        cancel,
        &mut crate::phase::Recorder::new(),
    )
}

/// [`network_flow_attack_cancellable`] that additionally records
/// per-phase wall-clock spans into `rec` — `attack-candidates`
/// (instance build + candidate scoring), `attack-mcmf` (the min-cost-flow
/// solve), `attack-assign` (assignment read-off + netlist
/// reconstruction) and `attack-eval` (OER/HD simulation). Recording is
/// observability only: results are bit-identical with or without it.
#[allow(clippy::too_many_arguments)]
pub fn network_flow_attack_traced(
    golden: &Netlist,
    placed: &Netlist,
    placement: &Placement,
    split: &SplitLayout,
    config: &ProximityConfig,
    cancel: &CancelToken,
    rec: &mut crate::phase::Recorder,
) -> Option<AttackOutcome> {
    let exec = Budget::on_pool(Arc::clone(Pool::global()), 1).with_cancel(cancel.clone());
    network_flow_attack_budgeted(golden, placed, placement, split, config, &exec, rec)
}

/// [`network_flow_attack_traced`] running inside an explicit
/// [`Budget`]: candidate scoring fans out over the budget's pool
/// (never exceeding its thread allotment) and the budget's token is the
/// cancellation source. Campaigns pass each job's split budget here, so
/// attack-internal parallelism shares the process-wide worker ceiling.
/// Results are bit-identical at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn network_flow_attack_budgeted(
    golden: &Netlist,
    placed: &Netlist,
    placement: &Placement,
    split: &SplitLayout,
    config: &ProximityConfig,
    exec: &Budget,
    rec: &mut crate::phase::Recorder,
) -> Option<AttackOutcome> {
    let cancel = exec.cancel_token();
    if cancel.is_cancelled() {
        return None;
    }
    let instance = rec.time("attack-candidates", || {
        AssignmentInstance::build_with(placed, split, config, exec)
    });
    let AssignmentInstance {
        ref sinks,
        ref candidates,
        ..
    } = instance;

    let mut flow = crate::mcmf::MinCostFlow::new(instance.nodes);
    let handles: Vec<usize> = instance
        .edges
        .iter()
        .map(|&(from, to, cap, cost)| flow.add_edge(from, to, cap, cost))
        .collect();
    rec.time("attack-mcmf", || {
        flow.run_interruptible(
            instance.source,
            instance.target,
            instance.demand,
            &mut || cancel.is_cancelled(),
        )
    })?;

    let (pairs, recovered) = rec.time("attack-assign", || {
        // Read the assignment off the flow; sinks the flow could not reach
        // fall back to their cheapest candidate.
        let mut chosen: Vec<Option<usize>> = vec![None; sinks.len()];
        for (si, sink_edges) in instance.sink_edges.iter().enumerate() {
            for &(ei, d) in sink_edges {
                if flow.flow_on(handles[ei]) > 0 {
                    chosen[si] = Some(d);
                    break;
                }
            }
            if chosen[si].is_none() {
                chosen[si] = candidates[si].first().map(|&(_, d)| d);
            }
        }

        // Reconstruct the netlist, honoring the loop-avoidance hint: apply
        // assignments cheapest-first; a connection that would close a loop is
        // retargeted to the cheapest loop-free candidate.
        let mut recovered = placed.clone();
        let mut order: Vec<usize> = (0..sinks.len()).collect();
        order.sort_by_key(|&si| {
            chosen[si]
                .and_then(|d| candidates[si].iter().find(|&&(_, dd)| dd == d))
                .map(|&(c, _)| c)
                .unwrap_or(i64::MAX)
        });
        let mut pairs = Vec::with_capacity(sinks.len());
        // Loop-avoidance probes run one reachability DFS per candidate;
        // the epoch-stamped scratch amortizes their visited maps across
        // the whole reconstruction.
        let mut reach = ReachScratch::new();
        for si in order {
            let s = sinks[si];
            let sink = match split.feol.vpins[s].side {
                VpinSide::Sink(sk) => sk,
                VpinSide::Driver(_) => unreachable!("s indexes sink vpins"),
            };
            let mut attempt: Vec<usize> = chosen[si].into_iter().collect();
            attempt.extend(candidates[si].iter().map(|&(_, d)| d));
            let mut connected = None;
            for d in attempt {
                let driver_net = split.feol.vpins[d].net; // FEOL-visible
                let ok = match sink {
                    Sink::Cell { cell, .. } => {
                        !would_create_cycle_with(&recovered, driver_net, cell, &mut reach)
                    }
                    Sink::Port(_) => true,
                };
                if ok {
                    let current_net = current_net_of(&recovered, sink);
                    if current_net != driver_net {
                        recovered
                            .move_sink(current_net, sink, driver_net)
                            .expect("split derived from placed netlist");
                    }
                    connected = Some(d);
                    break;
                }
            }
            if let Some(d) = connected {
                pairs.push((d, s));
            }
        }
        (pairs, recovered)
    });

    let _ = placement; // positions are already baked into the vpins

    // Last phase boundary before the OER/HD simulation (on superblue it
    // is a multi-second stage of its own).
    if cancel.is_cancelled() {
        return None;
    }
    let (ccr, metrics) = rec.time("attack-eval", || {
        let ccr = ccr_vs_golden(golden, split, &pairs);
        let mut rng = seeded(golden, config.eval_seed);
        let patterns = PatternSource::random(golden, config.eval_patterns, &mut rng);
        let metrics = security_metrics(golden, &recovered, &patterns).expect("same port interface");
        (ccr, metrics)
    });
    Some(AttackOutcome {
        pairs,
        ccr,
        recovered,
        metrics,
    })
}

/// CCR of an assignment against the *true* design.
///
/// For protected layouts the split view is derived from the erroneous
/// netlist, so [`SplitLayout::correct_connection_rate`] would score against
/// the wrong reference; this function looks each sink's true driving net up
/// in `golden` instead. Net/cell ids are shared between the original and
/// the erroneous netlist (randomization only moves sinks), so ids resolve
/// directly.
pub fn ccr_vs_golden(golden: &Netlist, split: &SplitLayout, pairs: &[(usize, usize)]) -> f64 {
    let sinks = split.feol.sink_vpins();
    if sinks.is_empty() {
        return 1.0;
    }
    let correct = pairs
        .iter()
        .filter(|&&(d, s)| {
            let sink = match split.feol.vpins[s].side {
                VpinSide::Sink(sk) => sk,
                VpinSide::Driver(_) => return false,
            };
            current_net_of(golden, sink) == split.feol.vpins[d].net
        })
        .count();
    correct as f64 / sinks.len() as f64
}

/// CCR over an explicit set of rewired connections — the metric behind
/// the paper's "0% CCR" headline: for every `(sink, true_net)` pair the
/// defense randomized, did the attacker reconnect that sink to its true
/// net?
pub fn ccr_over_connections(
    split: &SplitLayout,
    pairs: &[(usize, usize)],
    connections: &[(Sink, sm_netlist::NetId)],
) -> f64 {
    use std::collections::HashMap;
    let truth: HashMap<Sink, sm_netlist::NetId> = connections.iter().copied().collect();
    let mut total = 0usize;
    let mut correct = 0usize;
    let mut assigned: HashMap<Sink, sm_netlist::NetId> = HashMap::new();
    for &(d, s) in pairs {
        if let VpinSide::Sink(sk) = split.feol.vpins[s].side {
            assigned.insert(sk, split.feol.vpins[d].net);
        }
    }
    for (sink, true_net) in &truth {
        total += 1;
        if assigned.get(sink) == Some(true_net) {
            correct += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        correct as f64 / total as f64
    }
}

/// CCR restricted to a net subset (the paper reports CCR over the
/// randomized nets). A sink counts when its *true* net is in `nets`.
pub fn ccr_vs_golden_for(
    golden: &Netlist,
    split: &SplitLayout,
    pairs: &[(usize, usize)],
    nets: &[sm_netlist::NetId],
) -> f64 {
    let mut total = 0usize;
    let mut correct = 0usize;
    for &(d, s) in pairs {
        let sink = match split.feol.vpins[s].side {
            VpinSide::Sink(sk) => sk,
            VpinSide::Driver(_) => continue,
        };
        let truth = current_net_of(golden, sink);
        if !nets.contains(&truth) {
            continue;
        }
        total += 1;
        if truth == split.feol.vpins[d].net {
            correct += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        correct as f64 / total as f64
    }
}

/// Top-K candidate drivers for one sink by exhaustive scan — the
/// scoring reference (and the fallback for configurations the ring
/// bound cannot reason about). Returns the K smallest `(cost, driver)`
/// keys in ascending order; driver vpin indices make every key unique,
/// so the selection is a total order with no tie ambiguity.
fn score_sink_full(
    sink_pos: Point,
    drivers: &[usize],
    driver_geom: &[(Point, Option<(i8, i8)>)],
    k: usize,
    config: &ProximityConfig,
) -> Vec<(i64, usize)> {
    let mut row: Vec<(i64, usize)> = drivers
        .iter()
        .zip(driver_geom)
        .map(|(&d, &(pos, stub))| {
            (
                (pair_cost(pos, stub, sink_pos, config, 0.0) * 1000.0) as i64,
                d,
            )
        })
        .collect();
    row.sort_unstable();
    row.truncate(k);
    row
}

/// Top-K candidate drivers for one sink via expanding grid rings.
///
/// Exactness argument: a driver first visited on ring `r ≥ 1` sits at
/// Manhattan distance ≥ `(r−1)·cell + 1` DBU, its cost is ≥
/// `lb_mult · (dist_um + 0.1)` (`lb_mult` collects the smallest factor
/// combination a pair can be scored with, all non-negative here), and
/// `x → (x·1000) as i64` is monotone for non-negative finite `x` — so
/// once the ring bound *strictly* exceeds the current K-th `(cost,
/// driver)` key, no unvisited driver can displace a kept one, and the
/// kept set equals the exhaustive scan's.
fn score_sink_grid(
    sink_pos: Point,
    grid: &CellGrid,
    drivers: &[usize],
    driver_geom: &[(Point, Option<(i8, i8)>)],
    k: usize,
    config: &ProximityConfig,
    lb_mult: f64,
) -> Vec<(i64, usize)> {
    let mut heap: BinaryHeap<(i64, usize)> = BinaryHeap::with_capacity(k + 1);
    let (cx, cy) = grid.cell_of(sink_pos.x, sink_pos.y);
    let mut r = 0i64;
    while !grid.ring_exhausted(cx, cy, r) {
        if heap.len() == k {
            let lb_dbu = if r == 0 {
                0
            } else {
                (r - 1) * grid.cell_len() + 1
            };
            let lb = (lb_mult * (lb_dbu as f64 / 1000.0 + 0.1) * 1000.0) as i64;
            if lb > heap.peek().expect("heap holds k entries").0 {
                break;
            }
        }
        grid.visit_ring(cx, cy, r, |items| {
            for &i in items {
                let (pos, stub) = driver_geom[i as usize];
                let entry = (
                    (pair_cost(pos, stub, sink_pos, config, 0.0) * 1000.0) as i64,
                    drivers[i as usize],
                );
                if heap.len() < k {
                    heap.push(entry);
                } else if entry < *heap.peek().expect("heap holds k entries") {
                    heap.pop();
                    heap.push(entry);
                }
            }
        });
        r += 1;
    }
    heap.into_sorted_vec()
}

/// Cost of pairing a driver vpin (given by its flattened geometry) with
/// a sink vpin at `sink_pos`. Taking the geometry by value keeps the
/// sink × driver scoring loop on two flat arrays instead of chasing
/// vpin structs per pair.
fn pair_cost(
    driver_pos: Point,
    driver_stub: Option<(i8, i8)>,
    sink_pos: Point,
    config: &ProximityConfig,
    driver_load_ff: f64,
) -> f64 {
    let dist_um = driver_pos.manhattan_um(sink_pos);
    // A small floor keeps the multiplicative hints meaningful even for
    // coincident pins.
    let mut cost = config.distance_weight * (dist_um + 0.1);
    // Hint 4: dangling-wire direction. A stub pointing away from the sink
    // scales the cost up; the hint never overrides proximity entirely.
    if let Some((dx, dy)) = driver_stub {
        let to_sink = (
            (sink_pos.x - driver_pos.x).signum(),
            (sink_pos.y - driver_pos.y).signum(),
        );
        let disagrees =
            (dx != 0 && dx as i64 == -to_sink.0) || (dy != 0 && dy as i64 == -to_sink.1);
        if disagrees {
            cost *= config.direction_factor;
        }
    }
    // Hint 3: load capacitance — progressively discourage overloading one
    // driver with every sink in the neighborhood.
    let excess = (driver_load_ff - config.load_budget_ff).max(0.0);
    cost *= 1.0 + excess * config.load_factor_per_ff;
    cost
}

/// Capacity of a driver in the flow network, from the load hint: how many
/// typical sink pins its drive strength supports.
fn driver_capacity(
    placed: &Netlist,
    split: &SplitLayout,
    d: usize,
    config: &ProximityConfig,
) -> i64 {
    const TYPICAL_SINK_FF: f64 = 1.2;
    let strength = match split.feol.vpins[d].side {
        VpinSide::Driver(sm_netlist::Driver::Cell(c)) => {
            placed.library().cell(placed.cell(c).lib).drive_strength()
        }
        // Pad drivers are strong.
        VpinSide::Driver(sm_netlist::Driver::Port(_)) => 4.0,
        VpinSide::Sink(_) => unreachable!("d indexes driver vpins"),
    };
    ((strength * config.load_budget_ff / TYPICAL_SINK_FF) as i64).max(1)
}

fn current_net_of(netlist: &Netlist, sink: Sink) -> sm_netlist::NetId {
    match sink {
        Sink::Cell { cell, pin } => netlist.cell(cell).inputs()[pin as usize],
        Sink::Port(p) => netlist.output_ports()[p.index()].net,
    }
}

fn seeded(netlist: &Netlist, eval_seed: Option<u64>) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    let seed = eval_seed.unwrap_or_else(|| {
        netlist.name().bytes().fold(0x9e3779b9u64, |h, b| {
            h.wrapping_mul(131).wrapping_add(b as u64)
        })
    });
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::baselines::original_layout;
    use sm_core::flow::{protect, FlowConfig};
    use sm_layout::split_layout;
    use sm_netlist::parse::bench::{parse_bench, C17_BENCH};
    use sm_netlist::Library;

    fn c17() -> Netlist {
        parse_bench("c17", C17_BENCH, &Library::nangate45()).unwrap()
    }

    #[test]
    fn attack_on_original_layout_recovers_most_connections() {
        let n = c17();
        let base = original_layout(&n, 0.6, 1);
        let split = split_layout(&n, &base.placement, &base.routing, 3);
        if split.cut_nets == 0 {
            return; // everything below the split: nothing to attack
        }
        let out = network_flow_attack(&n, &n, &base.placement, &split, &ProximityConfig::default());
        // Unprotected layouts leak: proximity recovers a clear majority.
        assert!(out.ccr >= 0.5, "CCR {}", out.ccr);
        assert_eq!(out.pairs.len(), split.feol.sink_vpins().len());
    }

    #[test]
    fn attack_on_protected_layout_recovers_nothing() {
        let n = c17();
        let p = protect(&n, &FlowConfig::iscas_default(7));
        let split = split_layout(&p.randomization.erroneous, &p.placement, &p.feol_routing, 4);
        let out = network_flow_attack(
            &n,
            &p.randomization.erroneous,
            &p.placement,
            &split,
            &ProximityConfig::default(),
        );
        // The signature result of the paper: the randomized connections
        // are never recovered correctly, and the recovered netlist behaves
        // erroneously.
        let swapped = p.randomization.swapped_connections();
        let ccr_swapped = ccr_over_connections(&split, &out.pairs, &swapped);
        assert!(
            ccr_swapped <= 0.2,
            "CCR over randomized connections should collapse, got {ccr_swapped}"
        );
        assert!(out.metrics.oer > 0.3, "OER {}", out.metrics.oer);
    }

    #[test]
    fn recovered_netlist_is_structurally_valid() {
        let n = c17();
        let base = original_layout(&n, 0.6, 2);
        let split = split_layout(&n, &base.placement, &base.routing, 3);
        let out = network_flow_attack(&n, &n, &base.placement, &split, &ProximityConfig::default());
        out.recovered.validate().unwrap();
        sm_netlist::graph::topo_order(&out.recovered).unwrap();
    }

    #[test]
    fn cancelled_attack_returns_none_and_armed_token_changes_nothing() {
        let n = c17();
        let base = original_layout(&n, 0.6, 1);
        let split = split_layout(&n, &base.placement, &base.routing, 3);
        let cfg = ProximityConfig::default();
        // A pre-cancelled token stops the attack at its first phase
        // boundary with no partial result.
        let cancelled = CancelToken::new();
        cancelled.cancel();
        assert!(
            network_flow_attack_cancellable(&n, &n, &base.placement, &split, &cfg, &cancelled)
                .is_none()
        );
        // An armed-but-never-fired token must not perturb the result:
        // the cancellable path and the plain path agree exactly.
        let armed = CancelToken::new();
        let via_token =
            network_flow_attack_cancellable(&n, &n, &base.placement, &split, &cfg, &armed);
        let plain = network_flow_attack(&n, &n, &base.placement, &split, &cfg);
        match via_token {
            None => panic!("token never fired"),
            Some(out) => {
                assert_eq!(out.pairs, plain.pairs);
                assert_eq!(out.ccr, plain.ccr);
                assert_eq!(out.metrics.oer, plain.metrics.oer);
                assert_eq!(out.metrics.hd, plain.metrics.hd);
            }
        }
    }

    #[test]
    fn every_sink_gets_assigned_exactly_once() {
        let n = c17();
        let base = original_layout(&n, 0.6, 3);
        let split = split_layout(&n, &base.placement, &base.routing, 3);
        let out = network_flow_attack(&n, &n, &base.placement, &split, &ProximityConfig::default());
        let mut seen = std::collections::HashSet::new();
        for &(_, s) in &out.pairs {
            assert!(seen.insert(s), "sink {s} assigned twice");
        }
    }
}

#[cfg(test)]
mod scoring_differential {
    //! Pins the grid-pruned candidate scoring to the exhaustive
    //! reference: identical top-K `(cost, driver)` rows for every sink,
    //! on real generated layouts and across config corners (including
    //! ones where the ring bound must refuse to prune).

    use super::*;
    use sm_core::baselines::original_layout;
    use sm_layout::split_layout;

    type SinkRows = Vec<Vec<(i64, usize)>>;

    fn rows_for(n: &Netlist, config: &ProximityConfig) -> (SinkRows, SinkRows) {
        let base = original_layout(n, 0.6, 1);
        let split = split_layout(n, &base.placement, &base.routing, 3);
        let inst = AssignmentInstance::build(n, &split, config);
        let drivers = split.feol.driver_vpins();
        let driver_geom: Vec<(Point, Option<(i8, i8)>)> = drivers
            .iter()
            .map(|&d| {
                let v = &split.feol.vpins[d];
                (v.position, v.stub_direction)
            })
            .collect();
        let reference: Vec<Vec<(i64, usize)>> = split
            .feol
            .sink_vpins()
            .iter()
            .map(|&s| {
                score_sink_full(
                    split.feol.vpins[s].position,
                    &drivers,
                    &driver_geom,
                    config.candidates_per_sink.max(1),
                    config,
                )
            })
            .collect();
        (inst.candidates, reference)
    }

    #[test]
    fn grid_scoring_matches_exhaustive_reference() {
        let c432 = sm_benchgen::iscas::generate(&sm_benchgen::iscas::IscasProfile::c432(), 1);
        let c880 = sm_benchgen::iscas::generate(&sm_benchgen::iscas::IscasProfile::c880(), 1);
        for n in [&c432, &c880] {
            for k in [1usize, 3, 24, 10_000] {
                let config = ProximityConfig {
                    candidates_per_sink: k,
                    ..ProximityConfig::default()
                };
                let (grid, reference) = rows_for(n, &config);
                assert_eq!(grid, reference, "{} k={k}", n.name());
            }
        }
    }

    #[test]
    fn config_corners_agree_with_reference() {
        let n = sm_benchgen::iscas::generate(&sm_benchgen::iscas::IscasProfile::c432(), 2);
        let corners = [
            // Direction factor below 1 shrinks costs for disagreeing
            // stubs — the bound must use min(1, factor).
            ProximityConfig {
                direction_factor: 0.25,
                ..ProximityConfig::default()
            },
            // Zero distance weight: every pair costs the same floor.
            ProximityConfig {
                distance_weight: 0.0,
                ..ProximityConfig::default()
            },
            // Negative load budget: constant extra multiplier on every
            // pair.
            ProximityConfig {
                load_budget_ff: -3.0,
                ..ProximityConfig::default()
            },
            // Negative distance weight: pruning is unsound, the build
            // must fall back to the full scan (still equal by
            // construction — this guards the fallback is taken, not a
            // crash).
            ProximityConfig {
                distance_weight: -1.0,
                ..ProximityConfig::default()
            },
        ];
        for config in &corners {
            let (grid, reference) = rows_for(&n, config);
            assert_eq!(grid, reference, "corner {config:?}");
        }
    }

    #[test]
    fn parallel_scoring_is_order_stable() {
        let n = sm_benchgen::iscas::generate(&sm_benchgen::iscas::IscasProfile::c880(), 1);
        let base = original_layout(&n, 0.6, 1);
        let split = split_layout(&n, &base.placement, &base.routing, 3);
        let config = ProximityConfig::default();
        let serial = AssignmentInstance::build(&n, &split, &config);
        let parallel =
            AssignmentInstance::build_with(&n, &split, &config, &Budget::with_threads(Some(4)));
        assert_eq!(serial.candidates, parallel.candidates);
        assert_eq!(serial.edges, parallel.edges);
    }
}

#[cfg(test)]
mod differential_tests {
    //! The differential harness on *real* attack instances: the exact
    //! flow network `network_flow_attack` builds for generated ISCAS
    //! layouts (via the shared [`AssignmentInstance`] constructor, so
    //! the tested network can never drift from the attacked one),
    //! solved by both MCMF engines. Real instances carry exact cost
    //! ties (unlike the tie-free random instances in `mcmf::tests`), so
    //! the pin here is flow value + total cost + both certificates —
    //! which optimal matching gets picked is the engines' documented
    //! freedom, and the report-byte guarantee comes from the demand
    //! dispatch in `MinCostFlow::run`.

    use super::*;
    use crate::mcmf::certificate::{verify, verify_edges};
    use crate::mcmf::{reference::SspFlow, MinCostFlow};
    use sm_core::baselines::original_layout;
    use sm_layout::split_layout;

    #[test]
    fn real_iscas_instances_agree_on_value_and_cost() {
        let profile = sm_benchgen::iscas::IscasProfile::c432();
        let n = sm_benchgen::iscas::generate(&profile, 1);
        let base = original_layout(&n, 0.6, 1);
        let mut attacked = 0usize;
        for layer in [3u8, 4, 5] {
            let split = split_layout(&n, &base.placement, &base.routing, layer);
            if split.cut_nets == 0 {
                continue;
            }
            attacked += 1;
            let inst = AssignmentInstance::build(&n, &split, &ProximityConfig::default());
            let mut fast = MinCostFlow::new(inst.nodes);
            let mut ssp = SspFlow::new(inst.nodes);
            for &(from, to, cap, cost) in &inst.edges {
                fast.add_edge(from, to, cap, cost);
                ssp.add_edge(from, to, cap, cost);
            }
            let a = fast.run_cost_scaling(inst.source, inst.target, inst.demand);
            let b = ssp.run(inst.source, inst.target, inst.demand);
            assert_eq!(a, b, "engines disagree on layer {layer}");
            verify(&fast, inst.source, inst.target, inst.demand).expect("scaling certificate");
            verify_edges(
                ssp.num_nodes(),
                &ssp.edge_views(),
                inst.source,
                inst.target,
                inst.demand,
            )
            .expect("oracle certificate");
        }
        assert!(attacked >= 2, "expected cut nets on most layers");
    }
}
