//! Placement: centroid-driven global placement with Tetris legalization
//! and a greedy detailed-placement pass.
//!
//! The engine optimizes half-perimeter wirelength, which gives layouts the
//! property every proximity attack relies on: *connected gates end up close
//! to each other*. The randomization defense works precisely because this
//! optimization is applied to an erroneous netlist.

use crate::floorplan::Floorplan;
use crate::geom::{Point, Rect};
use crate::hpwl::{HpwlIndex, NetUnionScratch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sm_netlist::{CellId, ConnectivityIndex, Driver, NetId, Netlist, Sink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cell and port locations for one netlist on one floorplan.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    pub(crate) origins: Vec<Point>,
    pub(crate) widths: Vec<i64>,
    pub(crate) row_height: i64,
    pub(crate) inputs: Vec<Point>,
    pub(crate) outputs: Vec<Point>,
}

impl Placement {
    /// Lower-left origin of a cell.
    pub fn cell_origin(&self, cell: CellId) -> Point {
        self.origins[cell.index()]
    }

    /// Center of a cell (the proximity metric the attacks use).
    pub fn cell_center(&self, cell: CellId) -> Point {
        let o = self.origins[cell.index()];
        Point::new(
            o.x + self.widths[cell.index()] / 2,
            o.y + self.row_height / 2,
        )
    }

    /// Cell width in DBU (derived from library area and row height).
    pub fn cell_width(&self, cell: CellId) -> i64 {
        self.widths[cell.index()]
    }

    /// Moves a cell's origin (used by perturbation defenses; re-legalize
    /// afterwards with [`PlacementEngine::legalize`]).
    pub fn set_cell_origin(&mut self, cell: CellId, origin: Point) {
        self.origins[cell.index()] = origin;
    }

    /// Pad location of primary input `i`.
    pub fn input_position(&self, i: usize) -> Point {
        self.inputs[i]
    }

    /// Pad location of primary output `i`.
    pub fn output_position(&self, i: usize) -> Point {
        self.outputs[i]
    }

    /// Swaps the pad locations of two primary outputs (the pin-swapping
    /// defense of Rajendran et al. perturbs exactly this).
    pub fn swap_output_positions(&mut self, i: usize, j: usize) {
        self.outputs.swap(i, j);
    }

    /// Position of the pin driving `net`.
    pub fn driver_position(&self, netlist: &Netlist, net: NetId) -> Point {
        match netlist.net(net).driver() {
            Driver::Cell(c) => self.cell_center(c),
            Driver::Port(p) => self.inputs[p.index()],
        }
    }

    /// Positions of all sink pins of `net`.
    pub fn sink_positions(&self, netlist: &Netlist, net: NetId) -> Vec<Point> {
        netlist
            .net(net)
            .sinks()
            .iter()
            .map(|s| match *s {
                Sink::Cell { cell, .. } => self.cell_center(cell),
                Sink::Port(p) => self.outputs[p.index()],
            })
            .collect()
    }

    /// Half-perimeter wirelength of one net in DBU.
    pub fn net_hpwl(&self, netlist: &Netlist, net: NetId) -> i64 {
        let mut pts = self.sink_positions(netlist, net);
        pts.push(self.driver_position(netlist, net));
        hpwl_of(&pts)
    }

    /// Total half-perimeter wirelength in DBU.
    pub fn total_hpwl(&self, netlist: &Netlist) -> i64 {
        netlist
            .nets()
            .map(|(id, _)| self.net_hpwl(netlist, id))
            .sum()
    }

    /// `true` if no two cells overlap and every cell is inside the core.
    pub fn is_legal(&self, fp: &Floorplan) -> bool {
        let core = fp.core();
        let mut by_row: Vec<Vec<(i64, i64)>> = vec![Vec::new(); fp.num_rows()];
        for (i, o) in self.origins.iter().enumerate() {
            let w = self.widths[i];
            if o.x < core.lo.x || o.x + w > core.hi.x || o.y < core.lo.y || o.y >= core.hi.y {
                return false;
            }
            if (o.y - core.lo.y) % self.row_height != 0 {
                return false;
            }
            by_row[fp.row_of(o.y)].push((o.x, o.x + w));
        }
        for row in &mut by_row {
            row.sort_unstable();
            if row.windows(2).any(|w| w[0].1 > w[1].0) {
                return false;
            }
        }
        true
    }
}

fn hpwl_of(pts: &[Point]) -> i64 {
    if pts.is_empty() {
        return 0;
    }
    let (mut xmin, mut xmax, mut ymin, mut ymax) = (i64::MAX, i64::MIN, i64::MAX, i64::MIN);
    for p in pts {
        xmin = xmin.min(p.x);
        xmax = xmax.max(p.x);
        ymin = ymin.min(p.y);
        ymax = ymax.max(p.y);
    }
    (xmax - xmin) + (ymax - ymin)
}

/// Shared wall-clock meter for placement observability.
///
/// An engine wired to a meter (via [`PlacementEngine::with_meter`])
/// accumulates the total placement wall-clock and the slice of it spent
/// inside FM refinement. Engine clones share the meter, so the internal
/// disarmed-clone dance of [`PlacementEngine::place`] still reports into
/// the caller's meter. Metering is side-band observability — it feeds
/// timing reports and journal provenance and never influences placement
/// results.
#[derive(Debug, Default)]
pub struct PlaceMeter {
    place_ns: AtomicU64,
    fm_ns: AtomicU64,
}

impl PlaceMeter {
    /// A fresh zeroed meter behind the `Arc` the engine expects.
    pub fn shared() -> Arc<PlaceMeter> {
        Arc::new(PlaceMeter::default())
    }

    /// Drains both counters, returning `(total_place_ms, fm_refine_ms)`
    /// accumulated since the previous drain.
    pub fn drain_ms(&self) -> (f64, f64) {
        let place = self.place_ns.swap(0, Ordering::Relaxed);
        let fm = self.fm_ns.swap(0, Ordering::Relaxed);
        (place as f64 * 1e-6, fm as f64 * 1e-6)
    }
}

/// Wirelength-driven placement engine.
///
/// Deterministic for a given seed; the paper's flow re-places the erroneous
/// netlist with exactly this engine so the FEOL hints describe the wrong
/// design. The engine carries a [`sm_exec::Budget`]: recursive bisection's
/// large-region anchor sweeps fan out on that budget's shared pool (and
/// stay within its thread allotment) instead of spawning a private
/// machine-parallelism executor per region. The budget changes wall-clock
/// only — placements are bit-identical across any thread count.
#[derive(Debug, Clone)]
pub struct PlacementEngine {
    seed: u64,
    global_iterations: usize,
    detailed_passes: usize,
    /// `None` resolves to the process-global pool lazily at
    /// [`PlacementEngine::place`] time, so constructing an engine that
    /// is immediately re-budgeted never instantiates the global pool's
    /// workers.
    budget: Option<sm_exec::Budget>,
    meter: Option<Arc<PlaceMeter>>,
}

impl PlacementEngine {
    /// Creates an engine with the default iteration counts, budgeted on
    /// the process-global pool.
    pub fn new(seed: u64) -> Self {
        PlacementEngine {
            seed,
            global_iterations: 24,
            detailed_passes: 2,
            budget: None,
            meter: None,
        }
    }

    /// Overrides the number of centroid/legalize rounds.
    pub fn with_global_iterations(mut self, iterations: usize) -> Self {
        self.global_iterations = iterations;
        self
    }

    /// Overrides the number of detailed-placement passes.
    pub fn with_detailed_passes(mut self, passes: usize) -> Self {
        self.detailed_passes = passes;
        self
    }

    /// Runs this engine's parallel inner work (bisection anchor sweeps)
    /// on `budget` instead of the process-global pool. Results are
    /// identical either way; the budget bounds the worker threads the
    /// placement may occupy.
    pub fn with_budget(mut self, budget: sm_exec::Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Wires a [`PlaceMeter`] into the engine: every placement this
    /// engine (or a clone of it) runs adds its total wall-clock and its
    /// FM-refinement wall-clock to the meter.
    pub fn with_meter(mut self, meter: Arc<PlaceMeter>) -> Self {
        self.meter = Some(meter);
        self
    }

    /// Places `netlist` on `fp`.
    ///
    /// Pipeline: recursive min-cut bisection for global positions, a few
    /// centroid refinement rounds, legalization, then greedy detailed
    /// placement.
    ///
    /// Ignores any armed [`sm_exec::CancelToken`] on the engine's budget
    /// (existing callers rely on always getting a placement back); use
    /// [`PlacementEngine::try_place`] to honor a deadline.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has no cells.
    pub fn place(&self, netlist: &Netlist, fp: &Floorplan) -> Placement {
        let disarmed = self
            .budget
            .clone()
            .unwrap_or_default()
            .with_cancel(sm_exec::CancelToken::new());
        self.clone()
            .with_budget(disarmed)
            .try_place(netlist, fp)
            .expect("unarmed token cannot cancel a placement")
    }

    /// [`PlacementEngine::place`], honoring the budget's cancellation
    /// token: returns `None` if the token fires at one of the
    /// result-neutral checkpoints (between bisection levels and between
    /// FM passes). A run that completes is byte-identical to
    /// [`PlacementEngine::place`] — cancellation can only abandon a
    /// placement, never alter one.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has no cells.
    pub fn try_place(&self, netlist: &Netlist, fp: &Floorplan) -> Option<Placement> {
        let start = std::time::Instant::now();
        let out = self.place_impl(netlist, fp);
        if let Some(meter) = &self.meter {
            meter
                .place_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        out
    }

    fn place_impl(&self, netlist: &Netlist, fp: &Floorplan) -> Option<Placement> {
        assert!(netlist.num_cells() > 0, "cannot place an empty netlist");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let core = fp.core();
        let widths: Vec<i64> = netlist
            .cells()
            .map(|(_, c)| {
                let area = netlist.library().cell(c.lib).area_um2;
                let w_um = area / (fp.row_height() as f64 / 1000.0);
                ((w_um * 1000.0 / fp.site_width() as f64).ceil() as i64).max(1) * fp.site_width()
            })
            .collect();
        let inputs = edge_positions(core, netlist.input_ports().len(), true);
        let outputs = edge_positions(core, netlist.output_ports().len(), false);
        let mut pl = Placement {
            origins: (0..netlist.num_cells())
                .map(|_| random_point(&mut rng, core))
                .collect(),
            widths,
            row_height: fp.row_height(),
            inputs,
            outputs,
        };
        // Centroid sources per cell, flattened once: the driver of each
        // input net and the sinks of the output net. The Gauss-Seidel
        // sweeps below then walk one contiguous slice per cell instead
        // of pointer-chasing the netlist; visit order — and therefore
        // every update — is unchanged. Pads never move during
        // placement, so their points inline as constants.
        let mut src_off: Vec<u32> = Vec::with_capacity(netlist.num_cells() + 1);
        let mut srcs: Vec<CentroidSrc> = Vec::new();
        src_off.push(0);
        for (_, c) in netlist.cells() {
            for &net in c.inputs() {
                srcs.push(match netlist.net(net).driver() {
                    Driver::Cell(dc) => CentroidSrc::Cell(dc.index() as u32),
                    Driver::Port(p) => CentroidSrc::Fixed(pl.inputs[p.index()]),
                });
            }
            for s in netlist.net(c.output()).sinks() {
                srcs.push(match *s {
                    Sink::Cell { cell: sc, .. } => CentroidSrc::Cell(sc.index() as u32),
                    Sink::Port(p) => CentroidSrc::Fixed(pl.outputs[p.index()]),
                });
            }
            src_off.push(srcs.len() as u32);
        }
        let centroid = |pl: &Placement, cell: CellId| -> Point {
            let lo = src_off[cell.index()] as usize;
            let hi = src_off[cell.index() + 1] as usize;
            if lo == hi {
                return pl.cell_center(cell);
            }
            let (mut sx, mut sy) = (0i64, 0i64);
            for &s in &srcs[lo..hi] {
                let p = match s {
                    CentroidSrc::Cell(i) => pl.cell_center(CellId::new(i as usize)),
                    CentroidSrc::Fixed(p) => p,
                };
                sx += p.x;
                sy += p.y;
            }
            let k = (hi - lo) as i64;
            Point::new(sx / k, sy / k)
        };

        // Stage 1: free-floating centroid iterations give every cell a
        // geometric "home" near its logical neighborhood (ports anchor the
        // solution; overlaps are allowed here).
        let mut order: Vec<CellId> = (0..netlist.num_cells()).map(CellId::new).collect();
        for _ in 0..self.global_iterations.max(8) {
            order.shuffle(&mut rng);
            for &c in &order {
                let target = centroid(&pl, c);
                pl.origins[c.index()] = core.clamp(target);
            }
        }

        // Stage 2: recursive min-cut bisection, seeded by stage 1 (the
        // estimates feed terminal propagation), spreads the clusters over
        // the die without tearing connected cells apart. The CSR
        // connectivity built here also serves both detailed passes.
        let conn = ConnectivityIndex::build(netlist);
        // Resolve the budget once, only when placement actually runs.
        let budget = self.budget.clone().unwrap_or_default();
        for cycle in 0..2u64 {
            let in_ref = &pl.inputs;
            let out_ref = &pl.outputs;
            let seeded = pl.origins.clone();
            let origins = crate::bisect::bisection_positions(
                netlist,
                &conn,
                core,
                &pl.widths,
                move |d| match d {
                    Driver::Port(p) => in_ref[p.index()],
                    Driver::Cell(_) => core.center(),
                },
                move |i| out_ref[i],
                &seeded,
                sm_exec::seed::derive(self.seed, cycle),
                &budget,
                self.meter.as_deref().map(|m| &m.fm_ns),
            )?;
            pl.origins = origins;
            for _ in 0..4 {
                order.shuffle(&mut rng);
                for &c in &order {
                    let target = centroid(&pl, c);
                    let cur = pl.origins[c.index()];
                    let blended = Point::new((cur.x + target.x) / 2, (cur.y + target.y) / 2);
                    pl.origins[c.index()] = core.clamp(blended);
                }
            }
        }
        // A single legalization at the end; repeated harsh legalization
        // would destroy the clustering the bisection built.
        self.legalize(&mut pl, fp);
        if self.detailed_passes > 0 {
            let mut index = HpwlIndex::build(netlist, &pl, &conn);
            let mut scratch = NetUnionScratch::new(netlist.num_nets());
            for _ in 0..self.detailed_passes {
                self.detailed_pass(&mut pl, fp, &mut index, &mut scratch);
            }
        }
        debug_assert!(pl.is_legal(fp));
        Some(pl)
    }

    /// Snaps all cells to legal, non-overlapping row sites.
    ///
    /// Two phases: capacity-aware row assignment (each cell goes to the
    /// nearest row with free width), then in-row packing that respects the
    /// desired x order, shifting left only as much as needed to fit.
    ///
    /// # Panics
    ///
    /// Panics if the total cell width exceeds the floorplan capacity.
    pub fn legalize(&self, pl: &mut Placement, fp: &Floorplan) {
        let n = pl.origins.len();
        let row_width = fp.core().width();
        let num_rows = fp.num_rows();
        let total: i64 = pl.widths.iter().sum();
        assert!(
            total <= row_width * num_rows as i64,
            "cells exceed floorplan capacity"
        );
        // Phase 1: assign rows, nearest first, respecting capacity.
        let mut used = vec![0i64; num_rows];
        let mut row_cells: Vec<Vec<usize>> = vec![Vec::new(); num_rows];
        let mut idx: Vec<usize> = (0..n).collect();
        // Wider cells first so they never get stranded.
        idx.sort_by_key(|&i| std::cmp::Reverse(pl.widths[i]));
        for &i in &idx {
            let want_row = fp.row_of(pl.origins[i].y) as i64;
            let mut chosen = None;
            for dist in 0..num_rows as i64 {
                for r in [want_row - dist, want_row + dist] {
                    if r < 0 || r >= num_rows as i64 {
                        continue;
                    }
                    if used[r as usize] + pl.widths[i] <= row_width {
                        chosen = Some(r as usize);
                        break;
                    }
                    if dist == 0 {
                        break;
                    }
                }
                if chosen.is_some() {
                    break;
                }
            }
            let r = chosen.expect("capacity checked above");
            used[r] += pl.widths[i];
            row_cells[r].push(i);
        }
        // Phase 2: pack each row preserving desired x order.
        let lo_x = fp.core().lo.x;
        let hi_x = fp.core().hi.x;
        let site = fp.site_width();
        for (r, cells) in row_cells.iter_mut().enumerate() {
            cells.sort_by_key(|&i| pl.origins[i].x);
            let y = fp.row_y(r);
            // Greedy left-to-right at desired x (snapped to sites)…
            let mut xs = Vec::with_capacity(cells.len());
            let mut cursor = lo_x;
            for &i in cells.iter() {
                let want = (pl.origins[i].x - lo_x) / site * site + lo_x;
                let x = cursor.max(want);
                xs.push(x);
                cursor = x + pl.widths[i];
            }
            // …then sweep right-to-left to pull any overflow back inside.
            let mut limit = hi_x;
            for (k, &i) in cells.iter().enumerate().rev() {
                let max_x = limit - pl.widths[i];
                if xs[k] > max_x {
                    xs[k] = (max_x - lo_x) / site * site + lo_x;
                }
                limit = xs[k];
            }
            for (k, &i) in cells.iter().enumerate() {
                pl.origins[i] = Point::new(xs[k], y);
            }
        }
    }

    /// Swaps same-width neighbors in each row when HPWL improves.
    ///
    /// The swap evaluator is incremental and allocation-free: the nets
    /// touching the two cells come from the CSR connectivity (deduped
    /// through the epoch-stamped scratch), "before" reads the cached
    /// per-net boxes, "after" recomputes only the touched nets in
    /// O(pins-touched). HPWL is integer-exact, so accept/reject
    /// decisions are bit-identical to summing
    /// [`Placement::net_hpwl`] over the same net set — the guard
    /// proptests in this module enforce that equivalence.
    fn detailed_pass(
        &self,
        pl: &mut Placement,
        fp: &Floorplan,
        index: &mut HpwlIndex<'_>,
        scratch: &mut NetUnionScratch,
    ) {
        let n = pl.origins.len();
        let conn = index.connectivity();
        let mut by_row: Vec<Vec<usize>> = vec![Vec::new(); fp.num_rows()];
        for i in 0..n {
            by_row[fp.row_of(pl.origins[i].y)].push(i);
        }
        for row in &mut by_row {
            row.sort_by_key(|&i| pl.origins[i].x);
            for w in 0..row.len().saturating_sub(1) {
                let (a, b) = (row[w], row[w + 1]);
                if pl.widths[a] != pl.widths[b] {
                    continue;
                }
                scratch.begin();
                for &net in conn.cell_nets(CellId::new(a)) {
                    scratch.push_unique(net);
                }
                for &net in conn.cell_nets(CellId::new(b)) {
                    scratch.push_unique(net);
                }
                let before: i64 = scratch.nets.iter().map(|&x| index.net_hpwl(x)).sum();
                pl.origins.swap(a, b);
                let mut after = 0i64;
                for &x in &scratch.nets {
                    let bb = index.net_bbox(pl, x);
                    after += bb.hpwl();
                    scratch.boxes.push(bb);
                }
                if after >= before {
                    pl.origins.swap(a, b);
                } else {
                    index.commit_boxes(&scratch.nets, &scratch.boxes);
                    row.swap(w, w + 1);
                }
            }
        }
    }
}

/// One centroid source: a movable cell (by index) or a fixed pad point.
#[derive(Debug, Clone, Copy)]
enum CentroidSrc {
    Cell(u32),
    Fixed(Point),
}

fn random_point(rng: &mut StdRng, core: Rect) -> Point {
    Point::new(
        rng.gen_range(core.lo.x..core.hi.x),
        rng.gen_range(core.lo.y..core.hi.y),
    )
}

/// Ports spread evenly along the left (inputs) or right (outputs) edge.
fn edge_positions(core: Rect, count: usize, left: bool) -> Vec<Point> {
    let x = if left { core.lo.x } else { core.hi.x };
    (0..count)
        .map(|i| {
            let y = core.lo.y + core.height() * (2 * i as i64 + 1) / (2 * count.max(1) as i64);
            Point::new(x, y)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Technology;
    use sm_netlist::parse::bench::{parse_bench, C17_BENCH};
    use sm_netlist::Library;

    fn place_c17(seed: u64) -> (Netlist, Floorplan, Placement) {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(seed).place(&n, &fp);
        (n, fp, pl)
    }

    #[test]
    fn placement_is_legal() {
        let (_, fp, pl) = place_c17(1);
        assert!(pl.is_legal(&fp));
    }

    #[test]
    fn placement_deterministic_per_seed() {
        let (_, _, a) = place_c17(5);
        let (_, _, b) = place_c17(5);
        assert_eq!(a, b);
        // Different seeds may converge to the same tiny-layout optimum;
        // determinism is the contract, divergence is not.
    }

    #[test]
    fn optimized_beats_random() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let optimized = PlacementEngine::new(3).place(&n, &fp);
        let random = PlacementEngine::new(3)
            .with_global_iterations(0)
            .with_detailed_passes(0)
            .place(&n, &fp);
        assert!(optimized.total_hpwl(&n) <= random.total_hpwl(&n));
    }

    #[test]
    fn hpwl_positive_and_consistent() {
        let (n, _, pl) = place_c17(2);
        let total = pl.total_hpwl(&n);
        let manual: i64 = n.nets().map(|(id, _)| pl.net_hpwl(&n, id)).sum();
        assert!(total > 0);
        assert_eq!(total, manual);
    }

    #[test]
    fn ports_on_die_edges() {
        let (n, fp, pl) = place_c17(1);
        for i in 0..n.input_ports().len() {
            assert_eq!(pl.input_position(i).x, fp.core().lo.x);
        }
        for i in 0..n.output_ports().len() {
            assert_eq!(pl.output_position(i).x, fp.core().hi.x);
        }
    }

    #[test]
    fn legalize_resolves_collisions() {
        let (_, fp, mut pl) = place_c17(1);
        // Pile every cell on the same spot, then legalize.
        for o in &mut pl.origins {
            *o = Point::new(fp.core().lo.x + 7, fp.core().lo.y + 3);
        }
        PlacementEngine::new(0).legalize(&mut pl, &fp);
        assert!(pl.is_legal(&fp));
    }

    /// Straightforward reference swap evaluator: the pre-index
    /// detailed-pass inner loop (clone + sort + dedup the touched nets,
    /// full [`Placement::net_hpwl`] recomputation on both sides).
    fn reference_swap_eval(
        netlist: &Netlist,
        pl: &mut Placement,
        a: usize,
        b: usize,
    ) -> (i64, i64) {
        let touching = |i: usize| {
            let c = netlist.cell(CellId::new(i));
            let mut v: Vec<NetId> = c.inputs().to_vec();
            v.push(c.output());
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut nets = touching(a);
        nets.extend(touching(b));
        nets.sort_unstable();
        nets.dedup();
        let before: i64 = nets.iter().map(|&x| pl.net_hpwl(netlist, x)).sum();
        pl.origins.swap(a, b);
        let after: i64 = nets.iter().map(|&x| pl.net_hpwl(netlist, x)).sum();
        pl.origins.swap(a, b);
        (before, after)
    }

    /// A random layered netlist: `widths[k]` gates in layer `k`, each
    /// wired to `fanin[..]`-selected earlier signals.
    fn random_netlist(shape: &[(u8, u8)]) -> Netlist {
        let lib = Library::nangate45();
        let mut b = sm_netlist::NetlistBuilder::new("rand", &lib);
        let mut sigs = vec![b.input("i0"), b.input("i1"), b.input("i2")];
        for (k, &(width, fan)) in shape.iter().enumerate() {
            for g in 0..width.max(1) {
                let x = sigs[(k * 7 + g as usize * 3) % sigs.len()];
                let y = sigs[(k * 5 + g as usize * 11 + fan as usize) % sigs.len()];
                let out = b
                    .gate(
                        if (g + fan) % 2 == 0 {
                            sm_netlist::GateFn::Nand
                        } else {
                            sm_netlist::GateFn::Nor
                        },
                        &[x, y],
                    )
                    .unwrap();
                sigs.push(out);
            }
        }
        b.output("y", *sigs.last().unwrap());
        b.finish().unwrap()
    }

    mod equivalence_guard {
        use super::*;
        use crate::hpwl::NetUnionScratch;
        use proptest::prelude::*;
        use sm_netlist::ConnectivityIndex;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The cached index reproduces `Placement::net_hpwl`
            /// bit-exactly on random placements of random netlists.
            #[test]
            fn index_matches_reference_hpwl(
                shape in proptest::collection::vec((1u8..6, 0u8..8), 1..6),
                seed in 0u64..1_000_000,
            ) {
                let n = random_netlist(&shape);
                let tech = Technology::nangate45_10lm();
                let fp = Floorplan::for_netlist(&n, &tech, 0.5);
                let pl = PlacementEngine::new(seed)
                    .with_global_iterations(0)
                    .with_detailed_passes(0)
                    .place(&n, &fp);
                let conn = ConnectivityIndex::build(&n);
                let index = crate::hpwl::HpwlIndex::build(&n, &pl, &conn);
                for (id, _) in n.nets() {
                    prop_assert_eq!(index.net_hpwl(id), pl.net_hpwl(&n, id));
                }
                prop_assert_eq!(index.total_hpwl(), pl.total_hpwl(&n));
            }

            /// Random swap sequences: the incremental evaluator sees the
            /// same before/after sums as the reference evaluator (hence
            /// identical accept/reject decisions), and the committed
            /// cache stays exact across the whole sequence.
            #[test]
            fn incremental_swaps_match_reference(
                shape in proptest::collection::vec((1u8..6, 0u8..8), 1..5),
                seed in 0u64..1_000_000,
                swaps in proptest::collection::vec((0u16..64, 0u16..64), 1..24),
            ) {
                let n = random_netlist(&shape);
                let tech = Technology::nangate45_10lm();
                let fp = Floorplan::for_netlist(&n, &tech, 0.5);
                let mut pl = PlacementEngine::new(seed)
                    .with_global_iterations(0)
                    .with_detailed_passes(0)
                    .place(&n, &fp);
                let conn = ConnectivityIndex::build(&n);
                let mut index = crate::hpwl::HpwlIndex::build(&n, &pl, &conn);
                let mut scratch = NetUnionScratch::new(n.num_nets());
                for &(ra, rb) in &swaps {
                    let a = ra as usize % n.num_cells();
                    let b = rb as usize % n.num_cells();
                    let (ref_before, ref_after) = reference_swap_eval(&n, &mut pl, a, b);

                    // Incremental evaluation, mirroring detailed_pass.
                    scratch.begin();
                    for &net in conn.cell_nets(CellId::new(a)) {
                        scratch.push_unique(net);
                    }
                    for &net in conn.cell_nets(CellId::new(b)) {
                        scratch.push_unique(net);
                    }
                    let before: i64 =
                        scratch.nets.iter().map(|&x| index.net_hpwl(x)).sum();
                    pl.origins.swap(a, b);
                    let mut after = 0i64;
                    for &x in &scratch.nets {
                        let bb = index.net_bbox(&pl, x);
                        after += bb.hpwl();
                        scratch.boxes.push(bb);
                    }
                    prop_assert_eq!(before, ref_before);
                    prop_assert_eq!(after, ref_after);
                    if after >= before {
                        pl.origins.swap(a, b); // reject, as detailed_pass would
                    } else {
                        index.commit_boxes(&scratch.nets, &scratch.boxes);
                    }
                    // Cache still exact for every net after the decision.
                    for (id, _) in n.nets() {
                        prop_assert_eq!(index.net_hpwl(id), pl.net_hpwl(&n, id));
                    }
                }
            }
        }
    }

    /// Every ISCAS profile placed end to end: the debug-assertions
    /// shadow in `bisect.rs` replays each region's refinement through
    /// the retained reference kernel and asserts identical move
    /// sequences, so this differential-tests the arena FM kernel on
    /// real circuit structure (plus determinism across repeats).
    #[test]
    fn iscas_placements_pin_fm_kernel_to_reference() {
        if !cfg!(debug_assertions) {
            panic!("this test relies on the debug-build FM shadow");
        }
        let tech = Technology::nangate45_10lm();
        for profile in sm_benchgen::iscas::IscasProfile::all() {
            let n = sm_benchgen::iscas::generate(&profile, 1);
            let fp = Floorplan::for_netlist(&n, &tech, 0.6);
            let a = PlacementEngine::new(7).place(&n, &fp);
            let b = PlacementEngine::new(7).place(&n, &fp);
            assert_eq!(a, b, "placement not deterministic for {}", profile.name);
            assert!(a.is_legal(&fp));
        }
    }

    /// An expired budget lands mid-placement: `try_place` returns
    /// `None`, while the legacy `place` entry point disarms the token
    /// and always completes.
    #[test]
    fn try_place_honors_cancellation() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let cancelled = sm_exec::CancelToken::new();
        cancelled.cancel();
        let budget = sm_exec::Budget::default().with_cancel(cancelled);
        let engine = PlacementEngine::new(1).with_budget(budget);
        assert!(engine.try_place(&n, &fp).is_none());
        let pl = engine.place(&n, &fp);
        assert!(pl.is_legal(&fp));
        assert_eq!(pl, PlacementEngine::new(1).place(&n, &fp));
    }

    #[test]
    fn larger_benchmark_places_quickly_and_legally() {
        // A generated 400-gate circuit exercises multi-row legalization.
        let lib = Library::nangate45();
        let mut b = sm_netlist::NetlistBuilder::new("grid", &lib);
        let mut nets: Vec<sm_netlist::NetId> = (0..16).map(|i| b.input(format!("i{i}"))).collect();
        for round in 0..30 {
            let mut next = Vec::new();
            for w in nets.windows(2) {
                let g = b
                    .gate(
                        if round % 2 == 0 {
                            sm_netlist::GateFn::Nand
                        } else {
                            sm_netlist::GateFn::Nor
                        },
                        &[w[0], w[1]],
                    )
                    .unwrap();
                next.push(g);
            }
            // Keep the level wide so the circuit grows past 300 cells.
            next.push(nets[0]);
            nets = next;
            if nets.len() < 2 {
                break;
            }
        }
        for (i, &net) in nets.iter().enumerate() {
            b.output(format!("o{i}"), net);
        }
        let n = b.finish().unwrap();
        assert!(n.num_cells() > 300);
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.6);
        let pl = PlacementEngine::new(11).place(&n, &fp);
        assert!(pl.is_legal(&fp));
    }
}
