//! Power estimation: dynamic `α·C·V²·f` plus cell leakage.
//!
//! The paper analyzes power at 0.95 V (slow corner); lifting and re-routing
//! change the wire capacitance per net, so the randomization defense's
//! power overhead falls out of the same model.

use crate::route::RoutingResult;
use crate::tech::Technology;
use sm_netlist::Netlist;
use sm_sim::ActivityProfile;

/// Supply voltage used by the paper's analysis.
pub const VDD: f64 = 0.95;
/// Nominal clock frequency for dynamic power (1 GHz).
pub const FREQ_HZ: f64 = 1.0e9;

/// Power breakdown in µW.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Switching power in µW.
    pub dynamic_uw: f64,
    /// Leakage power in µW.
    pub leakage_uw: f64,
}

impl PowerReport {
    /// Total power in µW.
    pub fn total_uw(&self) -> f64 {
        self.dynamic_uw + self.leakage_uw
    }
}

/// Estimates power for a routed design under the given switching activity.
///
/// Per net: `P = α · (C_pins + C_wire) · V² · f`; leakage sums the library
/// numbers over all instances.
pub fn analyze(
    netlist: &Netlist,
    routes: &RoutingResult,
    tech: &Technology,
    activity: &ActivityProfile,
) -> PowerReport {
    let mut dynamic_w = 0.0f64;
    for (id, _) in netlist.nets() {
        let alpha = activity.toggle_prob[id.index()];
        let len_um = routes.net_wirelength_dbu(id) as f64 / 1000.0;
        let max_layer = routes.net_max_layer(id).max(2);
        let c_wire_ff = len_um * tech.avg_cap_ff_per_um(2, max_layer);
        let c_total_f = (netlist.net_pin_load_ff(id) + c_wire_ff) * 1.0e-15;
        dynamic_w += alpha * c_total_f * VDD * VDD * FREQ_HZ;
    }
    let leakage_nw: f64 = netlist
        .cells()
        .map(|(_, c)| netlist.library().cell(c.lib).leakage_nw)
        .sum();
    PowerReport {
        dynamic_uw: dynamic_w * 1.0e6,
        leakage_uw: leakage_nw * 1.0e-3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::PlacementEngine;
    use crate::route::{RouteOptions, Router};
    use crate::Floorplan;
    use rand::SeedableRng;
    use sm_netlist::parse::bench::{parse_bench, C17_BENCH};
    use sm_netlist::Library;

    fn setup(opts: &RouteOptions) -> (Netlist, RoutingResult, Technology) {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(7).place(&n, &fp);
        let r = Router::new(&tech).route(&n, &pl, &fp, opts);
        (n, r, tech)
    }

    #[test]
    fn power_positive() {
        let (n, r, tech) = setup(&RouteOptions::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let act = ActivityProfile::estimate(&n, 32, &mut rng);
        let p = analyze(&n, &r, &tech, &act);
        assert!(p.dynamic_uw > 0.0);
        assert!(p.leakage_uw > 0.0);
        assert!(p.total_uw() > p.dynamic_uw);
    }

    #[test]
    fn longer_wires_burn_more_dynamic_power() {
        let (n, base, tech) = setup(&RouteOptions::default());
        let mut opts = RouteOptions::default();
        for (id, net) in n.nets() {
            if net.degree() >= 2 {
                opts.lift.insert(id, 8);
            }
        }
        let (_, lifted, _) = setup(&opts);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let act = ActivityProfile::estimate(&n, 32, &mut rng);
        let p_base = analyze(&n, &base, &tech, &act);
        let p_lift = analyze(&n, &lifted, &tech, &act);
        // Lifted routes detour through upper layers; wirelength (and thus
        // dynamic power) must not decrease.
        assert!(p_lift.dynamic_uw >= p_base.dynamic_uw * 0.99);
        // Leakage is activity-independent and identical.
        assert!((p_lift.leakage_uw - p_base.leakage_uw).abs() < 1e-12);
    }

    #[test]
    fn zero_activity_means_leakage_only() {
        let (n, r, tech) = setup(&RouteOptions::default());
        let act = ActivityProfile {
            toggle_prob: vec![0.0; n.num_nets()],
        };
        let p = analyze(&n, &r, &tech, &act);
        assert_eq!(p.dynamic_uw, 0.0);
        assert!(p.leakage_uw > 0.0);
    }
}
