//! Die outline and standard-cell rows.

use crate::geom::{Point, Rect};
use crate::tech::Technology;
use sm_netlist::Netlist;

/// The die area and its placement rows.
///
/// Rows span the full core width; cells snap to sites of
/// [`Technology::site_width_dbu`]. Utilization is total cell area over core
/// area — the paper keeps it at 56–77% for superblue and picks rates that
/// avoid congestion.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    pub(crate) core: Rect,
    pub(crate) num_rows: usize,
    pub(crate) row_height: i64,
    pub(crate) site_width: i64,
    pub(crate) sites_per_row: usize,
    pub(crate) target_utilization: f64,
}

impl Floorplan {
    /// Sizes a square-ish die for `netlist` at the given target
    /// utilization (0 < u ≤ 1).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]` or the netlist is empty.
    pub fn for_netlist(netlist: &Netlist, tech: &Technology, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        assert!(netlist.num_cells() > 0, "cannot floorplan an empty netlist");
        let cell_area_um2 = netlist.total_cell_area_um2();
        let core_area_um2 = cell_area_um2 / utilization;
        // Square die rounded up to whole rows/sites.
        let side_um = core_area_um2.sqrt();
        let row_height = tech.row_height_dbu;
        let site_width = tech.site_width_dbu;
        let num_rows = ((side_um * 1000.0 / row_height as f64).ceil() as usize).max(1);
        let sites_per_row = ((side_um * 1000.0 / site_width as f64).ceil() as usize).max(4);
        let core = Rect::new(
            Point::new(0, 0),
            Point::new(
                sites_per_row as i64 * site_width,
                num_rows as i64 * row_height,
            ),
        );
        Floorplan {
            core,
            num_rows,
            row_height,
            site_width,
            sites_per_row,
            target_utilization: utilization,
        }
    }

    /// Builds a floorplan with an explicit outline (used when re-running a
    /// protected design in the *same* die as the original, so area overhead
    /// stays zero).
    pub fn with_outline(&self, extra_rows: usize) -> Floorplan {
        let mut fp = self.clone();
        fp.num_rows += extra_rows;
        fp.core = Rect::new(
            fp.core.lo,
            Point::new(
                fp.core.hi.x,
                fp.core.lo.y + fp.num_rows as i64 * fp.row_height,
            ),
        );
        fp
    }

    /// The core area rectangle.
    pub fn core(&self) -> Rect {
        self.core
    }

    /// Number of placement rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Row height in DBU.
    pub fn row_height(&self) -> i64 {
        self.row_height
    }

    /// Site width in DBU.
    pub fn site_width(&self) -> i64 {
        self.site_width
    }

    /// Sites per row.
    pub fn sites_per_row(&self) -> usize {
        self.sites_per_row
    }

    /// The utilization the floorplan was sized for.
    pub fn target_utilization(&self) -> f64 {
        self.target_utilization
    }

    /// Die area in µm².
    pub fn die_area_um2(&self) -> f64 {
        self.core.area() as f64 / 1.0e6
    }

    /// The y coordinate of row `r`'s bottom edge.
    ///
    /// # Panics
    ///
    /// Panics if `r >= num_rows()`.
    pub fn row_y(&self, r: usize) -> i64 {
        assert!(r < self.num_rows, "row {r} out of range");
        self.core.lo.y + r as i64 * self.row_height
    }

    /// The row whose band contains `y` (clamped to valid rows).
    pub fn row_of(&self, y: i64) -> usize {
        let r = (y - self.core.lo.y).div_euclid(self.row_height);
        (r.max(0) as usize).min(self.num_rows - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_netlist::parse::bench::{parse_bench, C17_BENCH};
    use sm_netlist::Library;

    fn c17() -> Netlist {
        parse_bench("c17", C17_BENCH, &Library::nangate45()).unwrap()
    }

    #[test]
    fn floorplan_fits_cells() {
        let n = c17();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.7);
        let usable = fp.die_area_um2() * 0.7;
        assert!(usable >= n.total_cell_area_um2() * 0.99);
        assert!(fp.num_rows() >= 1);
        assert_eq!(fp.row_height(), 1400);
    }

    #[test]
    fn utilization_shrinks_die() {
        let n = c17();
        let tech = Technology::nangate45_10lm();
        let tight = Floorplan::for_netlist(&n, &tech, 0.9);
        let loose = Floorplan::for_netlist(&n, &tech, 0.3);
        assert!(loose.die_area_um2() >= tight.die_area_um2());
    }

    #[test]
    fn row_lookup_roundtrip() {
        let n = c17();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        for r in 0..fp.num_rows() {
            assert_eq!(fp.row_of(fp.row_y(r)), r);
        }
        // Clamping below/above.
        assert_eq!(fp.row_of(-100), 0);
        assert_eq!(fp.row_of(i64::MAX / 2), fp.num_rows() - 1);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn zero_utilization_panics() {
        let n = c17();
        let tech = Technology::nangate45_10lm();
        let _ = Floorplan::for_netlist(&n, &tech, 0.0);
    }

    #[test]
    fn with_outline_adds_rows() {
        let n = c17();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.7);
        let fp2 = fp.with_outline(2);
        assert_eq!(fp2.num_rows(), fp.num_rows() + 2);
        assert!(fp2.die_area_um2() > fp.die_area_um2());
    }
}
