//! Flat net-geometry index with cached per-net bounding boxes.
//!
//! [`Placement::net_hpwl`] is exact but allocates a `Vec<Point>` of pin
//! positions on every call, and it sits in three hot loops: the
//! detailed-placement swap evaluator, the router's net-ordering sort and
//! per-net layer selection. [`HpwlIndex`] computes the same integer HPWL
//! from a one-time pass: the immobile port pins of each net collapse
//! into a precomputed bounding box, the movable cell pins come from the
//! CSR [`ConnectivityIndex`], and the current box of every net is
//! cached. Incremental updates after a cell swap touch only the nets of
//! the two cells, in O(pins-touched), with no heap allocation.
//!
//! **Exactness.** A net's pin set is its driver position plus all sink
//! positions. Ports contribute fixed pad points; cells contribute their
//! centers, and [`ConnectivityIndex::net_cells`] is precisely the set of
//! cells appearing as the net's driver or sinks (duplicates collapse,
//! which cannot change a min/max bounding box). The cached HPWL is
//! therefore bit-identical to [`Placement::net_hpwl`] for the same
//! placement snapshot — the equivalence-guard proptests pin this down.

use crate::geom::Point;
use crate::place::Placement;
use sm_netlist::{ConnectivityIndex, Driver, NetId, Netlist, Sink};

/// An axis-aligned bounding box over pin positions. The empty box is the
/// identity for [`BBox::add`] and has zero HPWL (matching `hpwl_of` on
/// an empty point list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BBox {
    xmin: i64,
    xmax: i64,
    ymin: i64,
    ymax: i64,
}

impl BBox {
    /// The empty box (identity element).
    pub const EMPTY: BBox = BBox {
        xmin: i64::MAX,
        xmax: i64::MIN,
        ymin: i64::MAX,
        ymax: i64::MIN,
    };

    /// Expands the box to cover `p`.
    #[inline]
    pub fn add(&mut self, p: Point) {
        self.xmin = self.xmin.min(p.x);
        self.xmax = self.xmax.max(p.x);
        self.ymin = self.ymin.min(p.y);
        self.ymax = self.ymax.max(p.y);
    }

    /// Expands the box to cover `other`.
    #[inline]
    pub fn merge(&mut self, other: BBox) {
        self.xmin = self.xmin.min(other.xmin);
        self.xmax = self.xmax.max(other.xmax);
        self.ymin = self.ymin.min(other.ymin);
        self.ymax = self.ymax.max(other.ymax);
    }

    /// Half-perimeter of the box; 0 for the empty box.
    #[inline]
    pub fn hpwl(&self) -> i64 {
        if self.xmin > self.xmax {
            0
        } else {
            (self.xmax - self.xmin) + (self.ymax - self.ymin)
        }
    }
}

/// Cached per-net geometry for one placement snapshot.
///
/// Borrowing rather than owning the [`ConnectivityIndex`] lets one CSR
/// build serve global placement, both detailed passes and the router.
/// Rebuild (or [`HpwlIndex::refresh`]) after any cell or pad moves that
/// bypass [`HpwlIndex::commit_boxes`].
#[derive(Debug)]
pub struct HpwlIndex<'a> {
    conn: &'a ConnectivityIndex,
    /// Fixed bounding box of each net's port pins (pads never move
    /// during placement optimization).
    port_bbox: Vec<BBox>,
    /// Current bounding box of each net (ports + cell centers).
    bbox: Vec<BBox>,
}

impl<'a> HpwlIndex<'a> {
    /// Builds the index for the current state of `placement`.
    pub fn build(
        netlist: &Netlist,
        placement: &Placement,
        conn: &'a ConnectivityIndex,
    ) -> HpwlIndex<'a> {
        let mut port_bbox = vec![BBox::EMPTY; netlist.num_nets()];
        for (id, net) in netlist.nets() {
            let slot = &mut port_bbox[id.index()];
            if let Driver::Port(p) = net.driver() {
                slot.add(placement.input_position(p.index()));
            }
            for s in net.sinks() {
                if let Sink::Port(p) = s {
                    slot.add(placement.output_position(p.index()));
                }
            }
        }
        let mut index = HpwlIndex {
            conn,
            port_bbox,
            bbox: Vec::new(),
        };
        index.refresh(placement);
        index
    }

    /// Recomputes every net's cached box from `placement` (used after
    /// bulk cell moves such as legalization).
    pub fn refresh(&mut self, placement: &Placement) {
        let mut boxes = std::mem::take(&mut self.bbox);
        boxes.clear();
        boxes.extend((0..self.conn.num_nets()).map(|n| self.net_bbox(placement, NetId::new(n))));
        self.bbox = boxes;
    }

    /// The current box of `net` recomputed from scratch in
    /// O(pins of net) — ports from the precomputed box, cells from
    /// their current centers.
    #[inline]
    pub fn net_bbox(&self, placement: &Placement, net: NetId) -> BBox {
        let mut bb = self.port_bbox[net.index()];
        for &cell in self.conn.net_cells(net) {
            bb.add(placement.cell_center(cell));
        }
        bb
    }

    /// Cached HPWL of `net` (valid for the placement snapshot the cache
    /// was last synchronized with).
    #[inline]
    pub fn net_hpwl(&self, net: NetId) -> i64 {
        self.bbox[net.index()].hpwl()
    }

    /// Sum of all cached net HPWLs.
    pub fn total_hpwl(&self) -> i64 {
        self.bbox.iter().map(BBox::hpwl).sum()
    }

    /// Installs recomputed boxes for `nets` (parallel array `boxes`)
    /// after an accepted move.
    pub fn commit_boxes(&mut self, nets: &[NetId], boxes: &[BBox]) {
        for (&net, &bb) in nets.iter().zip(boxes) {
            self.bbox[net.index()] = bb;
        }
    }

    /// The CSR connectivity behind the index.
    pub fn connectivity(&self) -> &'a ConnectivityIndex {
        self.conn
    }
}

/// Reusable buffers for allocation-free net-set union and box
/// recomputation in swap evaluation: an epoch-stamped membership mark
/// per net plus the union list and its recomputed boxes. One instance
/// serves an entire detailed-placement run; per candidate swap it only
/// clears lengths (capacity is retained), so the steady-state inner
/// loop performs **zero heap allocations**.
#[derive(Debug)]
pub struct NetUnionScratch {
    mark: Vec<u32>,
    epoch: u32,
    /// The current union, in first-touch order.
    pub nets: Vec<NetId>,
    /// Recomputed boxes, parallel to `nets`.
    pub boxes: Vec<BBox>,
}

impl NetUnionScratch {
    /// Scratch for a netlist with `num_nets` nets.
    pub fn new(num_nets: usize) -> NetUnionScratch {
        NetUnionScratch {
            mark: vec![0; num_nets],
            epoch: 0,
            nets: Vec::new(),
            boxes: Vec::new(),
        }
    }

    /// Starts a new union (invalidates previous membership in O(1)).
    pub fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.nets.clear();
        self.boxes.clear();
    }

    /// Adds `net` to the union unless already present this epoch.
    #[inline]
    pub fn push_unique(&mut self, net: NetId) {
        let m = &mut self.mark[net.index()];
        if *m != self.epoch {
            *m = self.epoch;
            self.nets.push(net);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::place::PlacementEngine;
    use crate::tech::Technology;
    use sm_netlist::parse::bench::{parse_bench, C17_BENCH};
    use sm_netlist::Library;

    #[test]
    fn cached_hpwl_matches_reference_on_c17() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(3).place(&n, &fp);
        let conn = ConnectivityIndex::build(&n);
        let index = HpwlIndex::build(&n, &pl, &conn);
        for (id, _) in n.nets() {
            assert_eq!(index.net_hpwl(id), pl.net_hpwl(&n, id), "net {id}");
        }
        assert_eq!(index.total_hpwl(), pl.total_hpwl(&n));
    }

    #[test]
    fn union_scratch_dedupes_per_epoch() {
        let mut s = NetUnionScratch::new(4);
        s.begin();
        s.push_unique(NetId::new(1));
        s.push_unique(NetId::new(3));
        s.push_unique(NetId::new(1));
        assert_eq!(s.nets, vec![NetId::new(1), NetId::new(3)]);
        s.begin();
        assert!(s.nets.is_empty());
        s.push_unique(NetId::new(1));
        assert_eq!(s.nets, vec![NetId::new(1)]);
    }

    /// A netlist deliberately full of degenerate nets: `dangle_in` is a
    /// single-pin net (input pad, no sinks), every gate-output net that
    /// feeds nothing is a single-pin net (one cell center), and the two
    /// buffers form a swappable same-width pair.
    fn degenerate_netlist() -> Netlist {
        let lib = Library::nangate45();
        let mut b = sm_netlist::NetlistBuilder::new("degen", &lib);
        let a = b.input("a");
        let _dangle_in = b.input("dangle_in"); // port-only net: one pin
        let u = b.gate(sm_netlist::GateFn::Buf, &[a]).unwrap();
        let v = b.gate(sm_netlist::GateFn::Buf, &[u]).unwrap();
        let w = b.gate(sm_netlist::GateFn::Buf, &[v]).unwrap();
        let _spur = b.gate(sm_netlist::GateFn::Buf, &[v]).unwrap(); // cell-only output net
        b.output("y", w);
        b.finish().unwrap()
    }

    fn placed_degenerate() -> (Netlist, Floorplan, crate::place::Placement) {
        let n = degenerate_netlist();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(9).place(&n, &fp);
        (n, fp, pl)
    }

    #[test]
    fn single_pin_nets_match_the_reference_recompute() {
        let (n, _, pl) = placed_degenerate();
        let conn = ConnectivityIndex::build(&n);
        let index = HpwlIndex::build(&n, &pl, &conn);
        let mut single_pin = 0usize;
        for (id, net) in n.nets() {
            let pins = 1 + net.sinks().len();
            if pins == 1 {
                single_pin += 1;
                assert_eq!(index.net_hpwl(id), 0, "a lone pin spans nothing");
            }
            assert_eq!(index.net_hpwl(id), pl.net_hpwl(&n, id), "net {id}");
        }
        assert!(single_pin >= 2, "fixture must contain single-pin nets");
        assert_eq!(index.total_hpwl(), pl.total_hpwl(&n));
    }

    #[test]
    fn all_coincident_pins_yield_zero_boxes_matching_reference() {
        let (n, fp, mut pl) = placed_degenerate();
        // Pile every cell onto one spot (an illegal but representable
        // intermediate state, exactly what legalization starts from).
        let spot = Point::new(fp.core().lo.x + 3, fp.core().lo.y + 5);
        for o in &mut pl.origins {
            *o = spot;
        }
        let conn = ConnectivityIndex::build(&n);
        let index = HpwlIndex::build(&n, &pl, &conn);
        for (id, net) in n.nets() {
            assert_eq!(index.net_hpwl(id), pl.net_hpwl(&n, id), "net {id}");
            // Nets with no port pins collapse to a zero-span box.
            let all_cells = matches!(net.driver(), sm_netlist::Driver::Cell(_))
                && net
                    .sinks()
                    .iter()
                    .all(|s| matches!(s, sm_netlist::Sink::Cell { .. }));
            if all_cells {
                assert_eq!(index.net_hpwl(id), 0, "coincident cells span nothing");
            }
        }
        assert_eq!(index.total_hpwl(), pl.total_hpwl(&n));
    }

    #[test]
    fn swap_eval_over_only_degenerate_nets_matches_reference() {
        let (n, _, mut pl) = placed_degenerate();
        let conn = ConnectivityIndex::build(&n);
        let mut index = HpwlIndex::build(&n, &pl, &conn);
        let mut scratch = NetUnionScratch::new(n.num_nets());
        // Swap every cell pair, mirroring the detailed-pass evaluator;
        // pairs involving the spur cell exercise evaluations whose net
        // union contains single-pin nets only reachable through it.
        let cells = n.num_cells();
        for a in 0..cells {
            for b in (a + 1)..cells {
                scratch.begin();
                for &net in conn.cell_nets(sm_netlist::CellId::new(a)) {
                    scratch.push_unique(net);
                }
                for &net in conn.cell_nets(sm_netlist::CellId::new(b)) {
                    scratch.push_unique(net);
                }
                let before: i64 = scratch.nets.iter().map(|&x| index.net_hpwl(x)).sum();
                let ref_before: i64 = scratch.nets.iter().map(|&x| pl.net_hpwl(&n, x)).sum();
                assert_eq!(before, ref_before, "swap ({a},{b}) before");
                pl.origins.swap(a, b);
                let mut after = 0i64;
                for &x in &scratch.nets {
                    let bb = index.net_bbox(&pl, x);
                    after += bb.hpwl();
                    scratch.boxes.push(bb);
                }
                let ref_after: i64 = scratch.nets.iter().map(|&x| pl.net_hpwl(&n, x)).sum();
                assert_eq!(after, ref_after, "swap ({a},{b}) after");
                // Commit (keep the swap), as an accepting detailed pass
                // would, so the cache is exercised across moves too.
                index.commit_boxes(&scratch.nets, &scratch.boxes);
                for (id, _) in n.nets() {
                    assert_eq!(index.net_hpwl(id), pl.net_hpwl(&n, id), "cache after swap");
                }
            }
        }
    }

    #[test]
    fn empty_bbox_has_zero_hpwl() {
        assert_eq!(BBox::EMPTY.hpwl(), 0);
        let mut bb = BBox::EMPTY;
        bb.add(Point::new(5, 7));
        assert_eq!(bb.hpwl(), 0, "single point spans nothing");
        bb.add(Point::new(2, 11));
        assert_eq!(bb.hpwl(), 3 + 4);
        let mut merged = BBox::EMPTY;
        merged.merge(bb);
        assert_eq!(merged, bb);
    }
}
