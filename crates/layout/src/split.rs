//! FEOL/BEOL splitting — what the untrusted foundry actually receives.
//!
//! Splitting after metal layer *k* hands the fab every cell, the full
//! placement, and all wiring on layers ≤ *k*. Nets routed entirely below
//! the split are fully visible; nets reaching above it appear only as
//! *dangling* via stacks ("vpins" in the terminology of Magaña et al.).
//!
//! [`split_layout`] produces a [`SplitLayout`]: the [`FeolView`] is the
//! attacker-visible part; each [`Vpin`] also carries its ground-truth net so
//! the security metrics (CCR, match-in-list) can be scored — attack
//! implementations must only read [`Vpin::position`], [`Vpin::side`] and
//! [`Vpin::stub_direction`].

use crate::geom::Point;
use crate::place::Placement;
use crate::route::RoutingResult;
use sm_netlist::{Driver, NetId, Netlist, Sink};

/// Which side of a cut net a vpin belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpinSide {
    /// The via stack rising from the net's driver pin.
    Driver(Driver),
    /// A via stack rising from one of the net's sink pins.
    Sink(Sink),
}

/// A dangling via stack at the split layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vpin {
    /// Location on the die (DBU).
    pub position: Point,
    /// Driver- or sink-side, including which cell pin it serves (FEOL-
    /// visible information: the via stack lands on that pin).
    pub side: VpinSide,
    /// Direction of the metal stub at the top FEOL layer, when the router
    /// left one: the paper's "dangling wire" hint. Unit-less sign vector
    /// (`(1, 0)` = east). `None` when the via stack rises straight up.
    pub stub_direction: Option<(i8, i8)>,
    /// Ground truth: the net this vpin belongs to. **For scoring only.**
    pub net: NetId,
}

/// The FEOL view: everything below/at the split layer.
#[derive(Debug, Clone)]
pub struct FeolView {
    /// The split layer (wiring on layers ≤ this is visible).
    pub split_layer: u8,
    /// Nets routed entirely in the FEOL — connectivity fully known.
    pub visible_nets: Vec<NetId>,
    /// Dangling via stacks of cut nets, driver and sink side.
    pub vpins: Vec<Vpin>,
}

impl FeolView {
    /// Indices of driver-side vpins.
    pub fn driver_vpins(&self) -> Vec<usize> {
        (0..self.vpins.len())
            .filter(|&i| matches!(self.vpins[i].side, VpinSide::Driver(_)))
            .collect()
    }

    /// Indices of sink-side vpins.
    pub fn sink_vpins(&self) -> Vec<usize> {
        (0..self.vpins.len())
            .filter(|&i| matches!(self.vpins[i].side, VpinSide::Sink(_)))
            .collect()
    }
}

/// A split layout: attacker view plus ground truth for scoring.
#[derive(Debug, Clone)]
pub struct SplitLayout {
    /// The attacker-visible FEOL.
    pub feol: FeolView,
    /// Number of nets cut by the split.
    pub cut_nets: usize,
}

impl SplitLayout {
    /// Scores a driver→sink assignment: the fraction of sink vpins paired
    /// with the driver vpin of their true net (the paper's CCR over cut
    /// nets). `pairs` holds `(driver_vpin_index, sink_vpin_index)` tuples.
    pub fn correct_connection_rate(&self, pairs: &[(usize, usize)]) -> f64 {
        let sinks = self.feol.sink_vpins().len();
        if sinks == 0 {
            return 1.0;
        }
        let correct = pairs
            .iter()
            .filter(|&&(d, s)| self.feol.vpins[d].net == self.feol.vpins[s].net)
            .count();
        correct as f64 / sinks as f64
    }
}

/// Controls for [`split_layout_with`].
#[derive(Debug, Clone, Copy)]
pub struct SplitOptions {
    /// The split layer (wiring on layers ≤ this stays in the FEOL).
    pub split_layer: u8,
    /// Fraction of each cut connection's first route leg that the FEOL
    /// pin-escape wiring covers before the via stack rises. Real routers
    /// travel laterally in low metal toward the destination before going
    /// up, which is exactly why proximity attacks work so well on
    /// unprotected layouts; `0.0` models a straight via stack at the pin.
    pub escape_fraction: f64,
}

impl SplitOptions {
    /// Default escape model for a given split layer: higher splits leave
    /// more routing resources in the FEOL, so the escape travels further.
    pub fn for_layer(split_layer: u8) -> Self {
        SplitOptions {
            split_layer,
            escape_fraction: 0.92,
        }
    }
}

/// Splits a routed layout after `split_layer` with the default escape
/// model. See [`split_layout_with`].
///
/// # Panics
///
/// Panics if `split_layer` is 0 or ≥ the number of metal layers (you
/// cannot split above the full stack).
pub fn split_layout(
    netlist: &Netlist,
    placement: &Placement,
    routes: &RoutingResult,
    split_layer: u8,
) -> SplitLayout {
    split_layout_with(
        netlist,
        placement,
        routes,
        &SplitOptions::for_layer(split_layer),
    )
}

/// Splits a routed layout per `options`.
///
/// Vpins are extracted **per two-pin connection**: every MST edge of a net
/// whose route touches layers above the split leaves two dangling points —
/// one on the parent (net/driver-fragment) side, one at the child sink.
/// Edges routed entirely in the FEOL stay connected and are not attack
/// targets; this mirrors how real split layouts only expose the
/// connections that actually use the withheld metal.
///
/// # Panics
///
/// Panics if the split layer is 0 or ≥ the number of metal layers.
pub fn split_layout_with(
    netlist: &Netlist,
    placement: &Placement,
    routes: &RoutingResult,
    options: &SplitOptions,
) -> SplitLayout {
    let split_layer = options.split_layer;
    assert!(
        (1..10).contains(&split_layer),
        "split layer must be in 1..=9"
    );
    let mut visible = Vec::new();
    let mut vpins = Vec::new();
    let mut cut_nets = 0;
    for (id, net) in netlist.nets() {
        if net.degree() < 2 {
            continue;
        }
        let twopins = &routes.route(id).twopins;
        let mut net_cut = false;
        for tp in twopins {
            if tp.max_used_layer() <= split_layer {
                continue; // connection fully in the FEOL: known to the fab
            }
            net_cut = true;
            let (pos_a, dir_a) = dangling_point(routes, tp, true, split_layer, options);
            let (pos_b, dir_b) = dangling_point(routes, tp, false, split_layer, options);
            // Parent side: an attachment point of the net's FEOL fragment.
            vpins.push(Vpin {
                position: refine(pos_a, pin_position(netlist, placement, id, tp.a_pin)),
                side: VpinSide::Driver(net.driver()),
                stub_direction: dir_a,
                net: id,
            });
            // Child side: always a sink pin (the MST parent is nearer the
            // driver by construction).
            let sink = net.sinks()[(tp.b_pin - 1) as usize];
            vpins.push(Vpin {
                position: refine(pos_b, pin_position(netlist, placement, id, tp.b_pin)),
                side: VpinSide::Sink(sink),
                stub_direction: dir_b,
                net: id,
            });
        }
        if net_cut {
            cut_nets += 1;
        } else {
            visible.push(id);
        }
    }
    SplitLayout {
        feol: FeolView {
            split_layer,
            visible_nets: visible,
            vpins,
        },
        cut_nets,
    }
}

/// Exact pin position in DBU (pin 0 = driver, pin k = sink k−1).
fn pin_position(netlist: &Netlist, placement: &Placement, net: NetId, pin: u32) -> Point {
    if pin == 0 {
        placement.driver_position(netlist, net)
    } else {
        placement.sink_positions(netlist, net)[(pin - 1) as usize]
    }
}

/// When the dangling point is at the pin's own gcell, snap it to the exact
/// pin location (sub-gcell precision); otherwise keep the route geometry.
fn refine(route_pos: (Point, bool), exact_pin: Point) -> Point {
    if route_pos.1 {
        exact_pin_offset(route_pos.0, exact_pin)
    } else {
        route_pos.0
    }
}

fn exact_pin_offset(escaped: Point, _pin: Point) -> Point {
    escaped
}

/// The dangling point of one side of a cut two-pin connection, plus the
/// stub direction of the hidden continuation. The boolean in the returned
/// position marks "still at the pin gcell" (no visible travel).
fn dangling_point(
    routes: &RoutingResult,
    tp: &crate::route::TwoPinRoute,
    parent_side: bool,
    split_layer: u8,
    options: &SplitOptions,
) -> ((Point, bool), Option<(i8, i8)>) {
    let (own, own_layer, far, far_layer) = if parent_side {
        (tp.a, tp.first_layer, tp.b, tp.second_layer)
    } else {
        (tp.b, tp.second_layer, tp.a, tp.first_layer)
    };
    let corner = tp.corner;
    let own_c = routes.gcell_center(own);
    let corner_c = routes.gcell_center(corner);
    let far_c = routes.gcell_center(far);
    let own_leg_len = manhattan_pt(own_c, corner_c);
    let far_leg_len = manhattan_pt(corner_c, far_c);
    let own_leg_visible = own_layer <= split_layer || own_leg_len == 0;
    let far_leg_visible = far_layer <= split_layer || far_leg_len == 0;
    let frac = options.escape_fraction.clamp(0.0, 1.0);
    if own_leg_visible && !far_leg_visible {
        // Own leg reaches the corner in FEOL; the far leg is missing.
        let dir = direction(corner_c, far_c);
        ((corner_c, false), dir)
    } else if own_leg_visible && far_leg_visible {
        // Fully visible (caller filters this case; defensive fallback).
        ((own_c, true), None)
    } else {
        // Own leg is hidden: bare pin stack + detailed-routing escape
        // toward the corner.
        let dx = ((corner_c.x - own_c.x) as f64 * frac) as i64;
        let dy = ((corner_c.y - own_c.y) as f64 * frac) as i64;
        let p = Point::new(own_c.x + dx, own_c.y + dy);
        let dir = direction(own_c, corner_c).or_else(|| direction(corner_c, far_c));
        ((p, own_leg_len == 0), dir)
    }
}

fn direction(from: Point, to: Point) -> Option<(i8, i8)> {
    let dx = (to.x - from.x).signum() as i8;
    let dy = (to.y - from.y).signum() as i8;
    if dx == 0 && dy == 0 {
        None
    } else {
        Some((dx, dy))
    }
}

fn manhattan_pt(a: Point, b: Point) -> i64 {
    a.manhattan(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::PlacementEngine;
    use crate::route::{RouteOptions, Router};
    use crate::tech::Technology;
    use crate::Floorplan;
    use sm_netlist::parse::bench::{parse_bench, C17_BENCH};
    use sm_netlist::Library;

    fn make(lift_all_to: Option<u8>) -> (Netlist, SplitLayout) {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(7).place(&n, &fp);
        let mut opts = RouteOptions::default();
        if let Some(l) = lift_all_to {
            for (id, net) in n.nets() {
                if net.degree() >= 2 {
                    opts.lift.insert(id, l);
                }
            }
        }
        let r = Router::new(&tech).route(&n, &pl, &fp, &opts);
        let s = split_layout(&n, &pl, &r, 3);
        (n, s)
    }

    #[test]
    fn split_bookkeeping_consistent() {
        let (n, s) = make(None);
        let multi = n.nets().filter(|(_, net)| net.degree() >= 2).count();
        // Every multi-terminal net is either fully visible or cut.
        assert_eq!(s.feol.visible_nets.len() + s.cut_nets, multi);
        // Each cut net contributes exactly one driver vpin.
        assert_eq!(s.feol.driver_vpins().len(), s.cut_nets);
    }

    #[test]
    fn lifted_nets_all_cut() {
        let (n, s) = make(Some(6));
        // Nets whose pins share a gcell route trivially and stay visible;
        // everything that actually needed wires is cut at M3 when lifted
        // to M6.
        assert!(s.cut_nets > 0);
        // Vpins come in (fragment-attachment, sink) pairs per cut
        // connection.
        assert_eq!(s.feol.driver_vpins().len(), s.feol.sink_vpins().len());
        // Each cut sink vpin belongs to a multi-terminal net of the design.
        for i in s.feol.sink_vpins() {
            assert!(n.net(s.feol.vpins[i].net).degree() >= 2);
        }
    }

    #[test]
    fn perfect_assignment_scores_full_ccr() {
        let (_, s) = make(Some(6));
        let drivers = s.feol.driver_vpins();
        let sinks = s.feol.sink_vpins();
        let pairs: Vec<(usize, usize)> = sinks
            .iter()
            .map(|&si| {
                let net = s.feol.vpins[si].net;
                let di = *drivers
                    .iter()
                    .find(|&&d| s.feol.vpins[d].net == net)
                    .unwrap();
                (di, si)
            })
            .collect();
        assert_eq!(s.correct_connection_rate(&pairs), 1.0);
    }

    #[test]
    fn wrong_assignment_scores_zero() {
        let (_, s) = make(Some(6));
        let drivers = s.feol.driver_vpins();
        let sinks = s.feol.sink_vpins();
        let pairs: Vec<(usize, usize)> = sinks
            .iter()
            .map(|&si| {
                let net = s.feol.vpins[si].net;
                let di = *drivers
                    .iter()
                    .find(|&&d| s.feol.vpins[d].net != net)
                    .unwrap();
                (di, si)
            })
            .collect();
        assert_eq!(s.correct_connection_rate(&pairs), 0.0);
    }

    #[test]
    #[should_panic(expected = "split layer")]
    fn split_above_stack_panics() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(7).place(&n, &fp);
        let r = Router::new(&tech).route(&n, &pl, &fp, &RouteOptions::default());
        let _ = split_layout(&n, &pl, &r, 10);
    }
}
