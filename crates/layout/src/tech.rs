//! Technology description: the ten-metal-layer stack of the Nangate-45
//! flow used in the paper, with per-layer pitch, preferred direction and
//! RC data for the timing/power models.

use serde::{Deserialize, Serialize};

/// Number of metal layers in the stack (M1–M10).
pub const NUM_METAL_LAYERS: usize = 10;

/// Routing direction a layer prefers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Horizontal wires (constant y).
    Horizontal,
    /// Vertical wires (constant x).
    Vertical,
}

/// One metal layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Name, `"M1"` … `"M10"`.
    pub name: String,
    /// 1-based layer number (M1 = 1).
    pub number: u8,
    /// Preferred routing direction (alternating up the stack).
    pub direction: Direction,
    /// Routing track pitch in DBU.
    pub pitch_dbu: i64,
    /// Wire resistance in Ω per µm.
    pub res_ohm_per_um: f64,
    /// Wire capacitance in fF per µm.
    pub cap_ff_per_um: f64,
}

/// A metal stack plus via cost data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Technology name.
    pub name: String,
    /// The metal layers, M1 first.
    pub layers: Vec<Layer>,
    /// Standard-cell row height in DBU.
    pub row_height_dbu: i64,
    /// Placement site width in DBU.
    pub site_width_dbu: i64,
    /// Resistance of a single via in Ω.
    pub via_res_ohm: f64,
    /// Capacitance of a single via in fF.
    pub via_cap_ff: f64,
}

impl Technology {
    /// The ten-layer Nangate-45-like stack the paper's flow targets.
    ///
    /// Lower layers are fine-pitch and resistive; upper layers are coarse,
    /// fast "fat" metal. M1 is horizontal; direction alternates upward.
    pub fn nangate45_10lm() -> Self {
        let mut layers = Vec::with_capacity(NUM_METAL_LAYERS);
        // (pitch nm, R Ω/µm, C fF/µm) roughly following a 45 nm stack:
        let data: [(i64, f64, f64); NUM_METAL_LAYERS] = [
            (190, 3.8, 0.20),   // M1
            (190, 3.8, 0.20),   // M2
            (190, 3.1, 0.20),   // M3
            (280, 2.1, 0.21),   // M4
            (280, 2.1, 0.21),   // M5
            (280, 2.1, 0.21),   // M6
            (800, 0.38, 0.26),  // M7
            (800, 0.38, 0.26),  // M8
            (1600, 0.16, 0.28), // M9
            (1600, 0.16, 0.28), // M10
        ];
        for (i, (pitch, r, c)) in data.into_iter().enumerate() {
            layers.push(Layer {
                name: format!("M{}", i + 1),
                number: (i + 1) as u8,
                direction: if i % 2 == 0 {
                    Direction::Horizontal
                } else {
                    Direction::Vertical
                },
                pitch_dbu: pitch,
                res_ohm_per_um: r,
                cap_ff_per_um: c,
            });
        }
        Technology {
            name: "nangate45-10lm".into(),
            layers,
            row_height_dbu: 1400,
            site_width_dbu: 190,
            via_res_ohm: 5.0,
            via_cap_ff: 0.05,
        }
    }

    /// Returns layer `m` (1-based, M1 = 1).
    ///
    /// # Panics
    ///
    /// Panics if `m` is 0 or beyond the stack.
    pub fn layer(&self, m: u8) -> &Layer {
        &self.layers[(m - 1) as usize]
    }

    /// Number of metal layers.
    pub fn num_layers(&self) -> u8 {
        self.layers.len() as u8
    }

    /// Average of the wire capacitance (fF/µm) of layers `lo..=hi`, used by
    /// net-level RC estimates when a net spans several layers.
    pub fn avg_cap_ff_per_um(&self, lo: u8, hi: u8) -> f64 {
        let (lo, hi) = (lo.max(1), hi.min(self.num_layers()));
        let slice = &self.layers[(lo - 1) as usize..=(hi - 1) as usize];
        slice.iter().map(|l| l.cap_ff_per_um).sum::<f64>() / slice.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_layer_stack() {
        let t = Technology::nangate45_10lm();
        assert_eq!(t.num_layers(), 10);
        assert_eq!(t.layer(1).name, "M1");
        assert_eq!(t.layer(10).name, "M10");
        assert_eq!(t.layer(1).direction, Direction::Horizontal);
        assert_eq!(t.layer(2).direction, Direction::Vertical);
        assert_eq!(t.layer(6).direction, Direction::Vertical);
    }

    #[test]
    fn upper_layers_are_faster_and_coarser() {
        let t = Technology::nangate45_10lm();
        assert!(t.layer(9).res_ohm_per_um < t.layer(2).res_ohm_per_um);
        assert!(t.layer(9).pitch_dbu > t.layer(2).pitch_dbu);
    }

    #[test]
    fn avg_cap_sane() {
        let t = Technology::nangate45_10lm();
        let c = t.avg_cap_ff_per_um(1, 10);
        assert!(c > 0.19 && c < 0.29);
        // Single-layer average equals that layer's cap.
        assert_eq!(t.avg_cap_ff_per_um(3, 3), t.layer(3).cap_ff_per_um);
    }
}
