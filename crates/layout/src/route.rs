//! Global routing over the ten-layer stack.
//!
//! The router models what the paper's evaluation measures:
//!
//! * nets are decomposed into two-pin connections (Prim MST) and routed as
//!   L-shapes on a horizontal/vertical *layer pair*, picked by net length —
//!   short nets live low in the stack, long nets high, exactly the
//!   distribution Fig. 5 of the paper shows for original layouts;
//! * *lifted* nets (correction-cell or naive-lifting nets) are forced onto
//!   an upper layer pair via [`RouteOptions::lift`];
//! * every pin reaches its routing layer through a via stack from M1 (or
//!   from the correction-cell pin layer), and every layer change on a route
//!   adds vias — [`ViaCounts`] reproduces the V12…V910 columns of Table 2;
//! * per-edge capacities track congestion; overloaded L-shapes are bumped
//!   to higher layer pairs, and any remaining overflow is reported.

use crate::floorplan::Floorplan;
use crate::geom::Point;
use crate::hpwl::HpwlIndex;
use crate::place::Placement;
use crate::tech::{Direction, Technology};
use sm_netlist::{ConnectivityIndex, NetId, Netlist, Sink};
use std::collections::HashMap;
use std::fmt;

/// How many nets [`Router::try_route`] routes between cancellation
/// checks. Small enough that an expired deadline stops a superblue-scale
/// route within milliseconds, large enough that the check never shows up
/// in a profile.
pub const ROUTE_CANCEL_STRIDE: usize = 64;

/// Per-via-level counts: `counts[k]` is the number of vias between layer
/// `k+1` and `k+2` (so index 0 = V12, index 8 = V910).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ViaCounts {
    /// V12 … V910.
    pub counts: [u64; 9],
}

impl ViaCounts {
    /// Total vias across all levels.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count of vias between layers `m` and `m+1` (1-based, `m` in 1..=9).
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `1..=9`.
    pub fn between(&self, m: u8) -> u64 {
        assert!((1..=9).contains(&m), "via level must be 1..=9");
        self.counts[(m - 1) as usize]
    }

    /// Percentage increase of each level vs a baseline (Table 2's Δ%).
    pub fn percent_increase_vs(&self, baseline: &ViaCounts) -> [f64; 9] {
        let mut out = [0.0; 9];
        for (i, slot) in out.iter_mut().enumerate() {
            if baseline.counts[i] > 0 {
                *slot = (self.counts[i] as f64 - baseline.counts[i] as f64)
                    / baseline.counts[i] as f64
                    * 100.0;
            }
        }
        out
    }
}

impl fmt::Display for ViaCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.counts.iter().enumerate() {
            write!(f, "V{}{}: {}  ", i + 1, i + 2, c)?;
        }
        write!(f, "total: {}", self.total())
    }
}

/// One straight routed wire on a single layer, in gcell coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteSegment {
    /// Metal layer (1-based).
    pub layer: u8,
    /// Start gcell (column, row).
    pub a: (u16, u16),
    /// End gcell (column, row); equal to `a` for zero-length stubs.
    pub b: (u16, u16),
}

/// A via stack at one location, spanning `from_layer` to `to_layer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViaStack {
    /// Gcell location.
    pub at: (u16, u16),
    /// Lower layer (1-based, inclusive).
    pub from_layer: u8,
    /// Upper layer (1-based, inclusive).
    pub to_layer: u8,
}

/// One routed two-pin (MST-edge) connection of a net: an L shape from the
/// parent pin `a` over `corner` to the child pin `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoPinRoute {
    /// Index of the parent pin in the net's pin list (0 = driver).
    pub a_pin: u32,
    /// Index of the child pin in the net's pin list (always a sink).
    pub b_pin: u32,
    /// Parent gcell.
    pub a: (u16, u16),
    /// Child gcell.
    pub b: (u16, u16),
    /// Elbow gcell.
    pub corner: (u16, u16),
    /// Layer of the `a → corner` leg.
    pub first_layer: u8,
    /// Layer of the `corner → b` leg.
    pub second_layer: u8,
}

impl TwoPinRoute {
    /// Highest layer used by a leg of nonzero length.
    pub fn max_used_layer(&self) -> u8 {
        let mut m = 0;
        if self.a != self.corner {
            m = m.max(self.first_layer);
        }
        if self.corner != self.b {
            m = m.max(self.second_layer);
        }
        m
    }
}

/// The full route of one net.
#[derive(Debug, Clone, Default)]
pub struct NetRoute {
    /// Wire segments.
    pub segments: Vec<RouteSegment>,
    /// Via stacks (pin access + corners).
    pub vias: Vec<ViaStack>,
    /// The two-pin connections the net decomposes into (MST edges), with
    /// their elbow geometry — the FEOL/BEOL split works per connection.
    pub twopins: Vec<TwoPinRoute>,
}

/// Options controlling a routing run.
#[derive(Debug, Clone, Default)]
pub struct RouteOptions {
    /// Nets forced to route on (at least) the given layer. The router uses
    /// the layer pair `(lift, lift ± 1)` honoring preferred directions.
    /// This is the mechanism behind correction-cell and naive lifting.
    pub lift: HashMap<NetId, u8>,
    /// Pins of lifted nets that already sit on the lift layer (correction
    /// cell pins) — their via stack starts at that layer instead of M1.
    /// Keyed by net; value is the number of such pins (driver side first).
    pub elevated_pins: HashMap<NetId, usize>,
}

/// Result of routing one netlist.
#[derive(Debug, Clone)]
pub struct RoutingResult {
    pub(crate) tile_dbu: i64,
    pub(crate) nx: u16,
    pub(crate) ny: u16,
    pub(crate) routes: Vec<NetRoute>,
    pub(crate) via_counts: ViaCounts,
    pub(crate) wirelength_per_layer: [i64; 10],
    pub(crate) overflow_edges: usize,
}

impl RoutingResult {
    /// The route of `net`.
    pub fn route(&self, net: NetId) -> &NetRoute {
        &self.routes[net.index()]
    }

    /// Number of routed nets.
    pub fn num_routes(&self) -> usize {
        self.routes.len()
    }

    /// Gcell tile size in DBU.
    pub fn tile_dbu(&self) -> i64 {
        self.tile_dbu
    }

    /// Grid dimensions (columns, rows).
    pub fn grid_dims(&self) -> (u16, u16) {
        (self.nx, self.ny)
    }

    /// Center of gcell `(gx, gy)` in DBU.
    pub fn gcell_center(&self, g: (u16, u16)) -> Point {
        Point::new(
            g.0 as i64 * self.tile_dbu + self.tile_dbu / 2,
            g.1 as i64 * self.tile_dbu + self.tile_dbu / 2,
        )
    }

    /// Aggregate via counts (Table 2).
    pub fn via_counts(&self) -> &ViaCounts {
        &self.via_counts
    }

    /// Wirelength per layer in DBU (Fig. 5); index 0 = M1.
    pub fn wirelength_per_layer_dbu(&self) -> &[i64; 10] {
        &self.wirelength_per_layer
    }

    /// Total routed wirelength in DBU.
    pub fn total_wirelength_dbu(&self) -> i64 {
        self.wirelength_per_layer.iter().sum()
    }

    /// Routed wirelength of one net in DBU (wire only, vias excluded).
    pub fn net_wirelength_dbu(&self, net: NetId) -> i64 {
        self.routes[net.index()]
            .segments
            .iter()
            .map(|s| seg_len(s) * self.tile_dbu)
            .sum()
    }

    /// Number of grid edges whose capacity is exceeded (0 for a clean,
    /// congestion-free layout — the paper's setup guarantees this by
    /// choosing utilization appropriately).
    pub fn overflow_edges(&self) -> usize {
        self.overflow_edges
    }

    /// Highest metal layer used by `net` (0 if unrouted/degenerate).
    pub fn net_max_layer(&self, net: NetId) -> u8 {
        let r = &self.routes[net.index()];
        r.segments
            .iter()
            .map(|s| s.layer)
            .chain(r.vias.iter().map(|v| v.to_layer))
            .max()
            .unwrap_or(0)
    }
}

fn seg_len(s: &RouteSegment) -> i64 {
    (s.a.0 as i64 - s.b.0 as i64).abs() + (s.a.1 as i64 - s.b.1 as i64).abs()
}

/// The global router.
#[derive(Debug)]
pub struct Router<'t> {
    tech: &'t Technology,
    /// Target grid resolution (max gcells per axis).
    max_grid: u16,
}

struct Grid {
    nx: u16,
    ny: u16,
    /// Edge usage for every layer in one flat arena; layer `l`'s edges
    /// live at `offsets[l-1]..offsets[l]`. One allocation instead of a
    /// `Vec<Vec<u32>>`, and `edge_index` resolves straight into it.
    usage: Vec<u32>,
    /// Arena offset of each layer's edge block (`num_layers + 1`).
    offsets: Vec<usize>,
    /// capacity per edge for each layer
    cap: Vec<u32>,
}

impl Grid {
    #[inline]
    fn edge_index(&self, layer: u8, from: (u16, u16), horizontal: bool) -> usize {
        let base = self.offsets[(layer - 1) as usize];
        base + if horizontal {
            from.1 as usize * (self.nx as usize - 1) + from.0 as usize
        } else {
            from.0 as usize * (self.ny as usize - 1) + from.1 as usize
        }
    }

    /// Layer `l`'s edge block (1-based layer).
    fn layer_usage(&self, layer: u8) -> &[u32] {
        let li = (layer - 1) as usize;
        &self.usage[self.offsets[li]..self.offsets[li + 1]]
    }
}

/// Reusable Prim-MST buffers; one instance serves the whole net loop,
/// so the router performs no per-net scratch allocation.
#[derive(Default)]
struct MstScratch {
    in_tree: Vec<bool>,
    dist: Vec<i64>,
    parent: Vec<usize>,
}

impl MstScratch {
    fn reset(&mut self, n: usize) {
        self.in_tree.clear();
        self.in_tree.resize(n, false);
        self.dist.clear();
        self.dist.resize(n, i64::MAX);
        self.parent.clear();
        self.parent.resize(n, 0);
    }
}

impl<'t> Router<'t> {
    /// Creates a router for the given technology.
    pub fn new(tech: &'t Technology) -> Self {
        Router {
            tech,
            max_grid: 128,
        }
    }

    /// Overrides the maximum grid resolution per axis.
    pub fn with_max_grid(mut self, max_grid: u16) -> Self {
        self.max_grid = max_grid.max(4);
        self
    }

    /// Routes every net of `netlist` over `placement`.
    pub fn route(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        fp: &Floorplan,
        options: &RouteOptions,
    ) -> RoutingResult {
        self.try_route(
            netlist,
            placement,
            fp,
            options,
            &sm_exec::CancelToken::new(),
        )
        .expect("an unarmed token cannot cancel routing")
    }

    /// [`Router::route`], honoring `cancel` between nets (every
    /// [`ROUTE_CANCEL_STRIDE`] of them): `None` means the token fired
    /// and the partial grid was discarded. The checkpoint sits between
    /// nets — never inside one — so a run that completes is
    /// byte-identical to [`Router::route`] whether or not a deadline
    /// was armed.
    pub fn try_route(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        fp: &Floorplan,
        options: &RouteOptions,
        cancel: &sm_exec::CancelToken,
    ) -> Option<RoutingResult> {
        let core = fp.core();
        let span = core.width().max(core.height()).max(1);
        // Tile floor of half a row keeps vpin geometry sharp on small dies
        // while bounding the grid for the big ones.
        let tile = (span / self.max_grid as i64).max(fp.row_height() / 2);
        let nx = ((core.width() + tile - 1) / tile).max(2) as u16;
        let ny = ((core.height() + tile - 1) / tile).max(2) as u16;
        let num_layers = self.tech.num_layers() as usize;
        let mut offsets = Vec::with_capacity(num_layers + 1);
        offsets.push(0usize);
        for l in 0..num_layers {
            let horizontal = self.tech.layers[l].direction == Direction::Horizontal;
            let edges = if horizontal {
                (nx as usize - 1) * ny as usize
            } else {
                nx as usize * (ny as usize - 1)
            };
            offsets.push(offsets[l] + edges);
        }
        let mut grid = Grid {
            nx,
            ny,
            usage: vec![0u32; offsets[num_layers]],
            offsets,
            // One routing track per pitch crossing the tile; a small
            // reserve is withheld for pin access on M2/M3.
            cap: (0..num_layers)
                .map(|l| {
                    let tracks = ((tile / self.tech.layers[l].pitch_dbu) as u32).max(2);
                    if l < 3 {
                        (tracks * 3 / 4).max(2)
                    } else {
                        tracks
                    }
                })
                .collect(),
        };

        let mut routes = vec![NetRoute::default(); netlist.num_nets()];
        let mut via_counts = ViaCounts::default();
        let mut wpl = [0i64; 10];

        // Route long nets first so they claim the upper layers they need.
        // HPWL is computed once per net through the flat geometry index
        // (bit-identical to `Placement::net_hpwl`) instead of re-deriving
        // it inside the sort comparator and again for layer selection.
        let conn = ConnectivityIndex::build(netlist);
        let geom = HpwlIndex::build(netlist, placement, &conn);
        let mut order: Vec<NetId> = netlist.nets().map(|(id, _)| id).collect();
        order.sort_by_key(|&id| std::cmp::Reverse(geom.net_hpwl(id)));

        // Per-net scratch, reused across the loop: the net loop performs
        // no heap allocation beyond growing each net's own result route.
        let mut pins: Vec<Point> = Vec::new();
        let mut gpins: Vec<(u16, u16)> = Vec::new();
        let mut mst = MstScratch::default();

        for (ni, net) in order.into_iter().enumerate() {
            if ni % ROUTE_CANCEL_STRIDE == 0 && cancel.is_cancelled() {
                return None;
            }
            if netlist.net(net).degree() < 2 {
                continue;
            }
            pins.clear();
            pins.push(placement.driver_position(netlist, net));
            for s in netlist.net(net).sinks() {
                pins.push(match *s {
                    Sink::Cell { cell, .. } => placement.cell_center(cell),
                    Sink::Port(p) => placement.output_position(p.index()),
                });
            }
            gpins.clear();
            gpins.extend(pins.iter().map(|p| {
                (
                    ((p.x - core.lo.x) / tile).clamp(0, nx as i64 - 1) as u16,
                    ((p.y - core.lo.y) / tile).clamp(0, ny as i64 - 1) as u16,
                )
            }));
            let lift = options.lift.get(&net).copied();
            let pair = match lift {
                Some(l) => self.lift_pair(l),
                None => {
                    let len_um = geom.net_hpwl(net) as f64 / 1000.0;
                    self.length_pair(len_um)
                }
            };
            let route = &mut routes[net.index()];
            self.route_net(&mut grid, &gpins, pair, route, &mut mst);
            // Pin via stacks: from the pin layer up to the lower routing
            // layer of the pair, appended after the corner vias (the
            // order the per-net clone used to produce). Cell pins live
            // at M1; correction-cell pins (elevated) already sit at the
            // lift layer.
            let elevated = options.elevated_pins.get(&net).copied().unwrap_or(0);
            let low = pair.0.min(pair.1);
            for (i, &g) in gpins.iter().enumerate() {
                let pin_layer = if i < elevated { low } else { 1 };
                if pin_layer < low {
                    route.vias.push(ViaStack {
                        at: g,
                        from_layer: pin_layer,
                        to_layer: low,
                    });
                }
            }
            for v in &route.vias {
                for k in v.from_layer..v.to_layer {
                    via_counts.counts[(k - 1) as usize] += 1;
                }
            }
            for s in &route.segments {
                wpl[(s.layer - 1) as usize] += seg_len(s) * tile;
            }
        }

        let overflow_edges = (1..=num_layers as u8)
            .map(|l| {
                grid.layer_usage(l)
                    .iter()
                    .filter(|&&u| u > grid.cap[(l - 1) as usize])
                    .count()
            })
            .sum();

        Some(RoutingResult {
            tile_dbu: tile,
            nx,
            ny,
            routes,
            via_counts,
            wirelength_per_layer: wpl,
            overflow_edges,
        })
    }

    /// Layer pair `(horizontal, vertical)` for a lifted net: the lift layer
    /// plus the adjacent layer of the other direction (above if possible).
    fn lift_pair(&self, lift: u8) -> (u8, u8) {
        // The clamp keeps `lift` below the top layer, so the partner
        // above always exists.
        let lift = lift.clamp(2, self.tech.num_layers() - 1);
        let lift_dir = self.tech.layer(lift).direction;
        let partner = lift + 1;
        match lift_dir {
            Direction::Horizontal => (lift, partner),
            Direction::Vertical => (partner, lift),
        }
    }

    /// Length-based layer assignment by absolute net length, mirroring how
    /// routers fill the stack: short nets stay in M2/M3, only genuinely
    /// long wires earn the upper layers. (Horizontal layers are odd,
    /// vertical even in this stack.)
    fn length_pair(&self, len_um: f64) -> (u8, u8) {
        if len_um < 6.0 {
            (3, 2)
        } else if len_um < 12.0 {
            (3, 4)
        } else if len_um < 25.0 {
            (5, 4)
        } else if len_um < 60.0 {
            (5, 6)
        } else if len_um < 150.0 {
            (7, 6)
        } else {
            (9, 8)
        }
    }

    /// Routes one multi-pin net on the given layer pair: Prim MST over the
    /// pins, each MST edge realized as the cheaper of the two L-shapes,
    /// bumping the pair upward when both elbows are congested. Writes
    /// into `route` (the net's result slot) using the shared MST
    /// scratch, so nothing transient is allocated per net.
    fn route_net(
        &self,
        grid: &mut Grid,
        pins: &[(u16, u16)],
        pair: (u8, u8),
        route: &mut NetRoute,
        mst: &mut MstScratch,
    ) {
        if pins.len() < 2 {
            return;
        }
        // Prim MST on Manhattan distance.
        let n = pins.len();
        mst.reset(n);
        let MstScratch {
            in_tree,
            dist,
            parent,
        } = mst;
        in_tree[0] = true;
        for i in 1..n {
            dist[i] = manhattan(pins[0], pins[i]);
        }
        for _ in 1..n {
            let mut best = usize::MAX;
            for i in 0..n {
                if !in_tree[i] && (best == usize::MAX || dist[i] < dist[best]) {
                    best = i;
                }
            }
            in_tree[best] = true;
            for i in 0..n {
                if !in_tree[i] {
                    let d = manhattan(pins[best], pins[i]);
                    if d < dist[i] {
                        dist[i] = d;
                        parent[i] = best;
                    }
                }
            }
            self.route_two_pin(
                grid,
                (parent[best] as u32, pins[parent[best]]),
                (best as u32, pins[best]),
                pair,
                route,
            );
        }
    }

    fn route_two_pin(
        &self,
        grid: &mut Grid,
        a_pin: (u32, (u16, u16)),
        b_pin: (u32, (u16, u16)),
        pair: (u8, u8),
        route: &mut NetRoute,
    ) {
        let (a_idx, a) = a_pin;
        let (b_idx, b) = b_pin;
        if a == b {
            route.twopins.push(TwoPinRoute {
                a_pin: a_idx,
                b_pin: b_idx,
                a,
                b,
                corner: a,
                first_layer: pair.0,
                second_layer: pair.1,
            });
            return;
        }
        let (mut hl, mut vl) = pair;
        let max_layer = self.tech.num_layers();
        loop {
            // Two elbows: corner at (b.x, a.y) = horizontal-first, or
            // (a.x, b.y) = vertical-first.
            let c1 = (b.0, a.1);
            let c2 = (a.0, b.1);
            let cost1 = self
                .l_cost(grid, a, c1, hl)
                .saturating_add(self.l_cost(grid, c1, b, vl));
            let cost2 = self
                .l_cost(grid, a, c2, vl)
                .saturating_add(self.l_cost(grid, c2, b, hl));
            let congested = cost1 == i64::MAX && cost2 == i64::MAX;
            if congested && hl + 2 <= max_layer && vl + 2 <= max_layer {
                hl += 2;
                vl += 2;
                continue;
            }
            let (corner, first_l, second_l) = if cost1 <= cost2 {
                (c1, hl, vl)
            } else {
                (c2, vl, hl)
            };
            self.commit(grid, a, corner, first_l, route);
            self.commit(grid, corner, b, second_l, route);
            // Corner via between the pair's two layers.
            if a != corner && corner != b {
                route.vias.push(ViaStack {
                    at: corner,
                    from_layer: hl.min(vl),
                    to_layer: hl.max(vl),
                });
            }
            route.twopins.push(TwoPinRoute {
                a_pin: a_idx,
                b_pin: b_idx,
                a,
                b,
                corner,
                first_layer: first_l,
                second_layer: second_l,
            });
            return;
        }
    }

    /// Cost of a straight run on `layer`; `i64::MAX` when any edge is at
    /// capacity (signals the caller to bump layers). Walks the arena
    /// directly — no intermediate edge-index buffer.
    fn l_cost(&self, grid: &Grid, a: (u16, u16), b: (u16, u16), layer: u8) -> i64 {
        if a == b {
            return 0;
        }
        let horizontal = a.1 == b.1;
        // Wrong-direction run on this layer: route on the partner instead;
        // caller guarantees direction matches, so treat as plain length.
        // A straight run's edges are contiguous in the arena, so the
        // walk is one slice scan.
        let cap = grid.cap[(layer - 1) as usize];
        let (start, len) = span(grid, a, b, layer, horizontal);
        let mut cost = 0i64;
        for &u in &grid.usage[start..start + len] {
            if u >= cap * 2 {
                return i64::MAX;
            }
            cost += 1 + if u >= cap { 8 } else { 0 };
        }
        cost
    }

    fn commit(
        &self,
        grid: &mut Grid,
        a: (u16, u16),
        b: (u16, u16),
        layer: u8,
        route: &mut NetRoute,
    ) {
        if a == b {
            return;
        }
        let horizontal = a.1 == b.1;
        let (start, len) = span(grid, a, b, layer, horizontal);
        for u in &mut grid.usage[start..start + len] {
            *u += 1;
        }
        route.segments.push(RouteSegment { layer, a, b });
    }
}

fn manhattan(a: (u16, u16), b: (u16, u16)) -> i64 {
    (a.0 as i64 - b.0 as i64).abs() + (a.1 as i64 - b.1 as i64).abs()
}

/// Arena span of the straight run `a → b` on `layer`: the run's edges
/// are consecutive, starting at the lower endpoint.
#[inline]
fn span(grid: &Grid, a: (u16, u16), b: (u16, u16), layer: u8, horizontal: bool) -> (usize, usize) {
    if horizontal {
        let start = grid.edge_index(layer, (a.0.min(b.0), a.1), true);
        (start, (a.0.max(b.0) - a.0.min(b.0)) as usize)
    } else {
        let start = grid.edge_index(layer, (a.0, a.1.min(b.1)), false);
        (start, (a.1.max(b.1) - a.1.min(b.1)) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::PlacementEngine;
    use sm_netlist::parse::bench::{parse_bench, C17_BENCH};
    use sm_netlist::Library;

    fn routed_c17(options: &RouteOptions) -> (Netlist, RoutingResult) {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(7).place(&n, &fp);
        let r = Router::new(&tech).route(&n, &pl, &fp, options);
        (n, r)
    }

    #[test]
    fn all_nets_routed() {
        let (n, r) = routed_c17(&RouteOptions::default());
        assert_eq!(r.num_routes(), n.num_nets());
        assert!(r.total_wirelength_dbu() >= 0);
        // Every multi-terminal net must have pin via stacks.
        for (id, net) in n.nets() {
            if net.degree() >= 2 {
                assert!(!r.route(id).vias.is_empty(), "net {id} has no vias");
            }
        }
    }

    #[test]
    fn try_route_honors_cancellation() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(7).place(&n, &fp);
        let router = Router::new(&tech);
        let opts = RouteOptions::default();
        // A pre-cancelled token aborts at the first between-nets check.
        let fired = sm_exec::CancelToken::new();
        fired.cancel();
        assert!(router.try_route(&n, &pl, &fp, &opts, &fired).is_none());
        // A completed cancellable run is identical to the plain one.
        let live = sm_exec::CancelToken::new();
        let cancellable = router.try_route(&n, &pl, &fp, &opts, &live).unwrap();
        let plain = router.route(&n, &pl, &fp, &opts);
        assert_eq!(
            cancellable.total_wirelength_dbu(),
            plain.total_wirelength_dbu()
        );
        assert_eq!(cancellable.via_counts(), plain.via_counts());
    }

    #[test]
    fn via_counts_match_routes() {
        let (n, r) = routed_c17(&RouteOptions::default());
        let mut manual = ViaCounts::default();
        for (id, _) in n.nets() {
            for v in &r.route(id).vias {
                for k in v.from_layer..v.to_layer {
                    manual.counts[(k - 1) as usize] += 1;
                }
            }
        }
        assert_eq!(manual, *r.via_counts());
    }

    #[test]
    fn lifting_moves_nets_to_upper_layers() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let mut options = RouteOptions::default();
        for (id, net) in n.nets() {
            if net.degree() >= 2 {
                options.lift.insert(id, 6);
            }
        }
        let (_, lifted) = routed_c17(&options);
        let (_, base) = routed_c17(&RouteOptions::default());
        // Lifted layout has more vias at V56 and above.
        let hi_lifted: u64 = (5..=9).map(|m| lifted.via_counts().between(m)).sum();
        let hi_base: u64 = (5..=9).map(|m| base.via_counts().between(m)).sum();
        assert!(
            hi_lifted > hi_base,
            "lifted {hi_lifted} vs base {hi_base} upper-layer vias"
        );
        // And all lifted nets reach at least M6.
        for (id, net) in n.nets() {
            if net.degree() >= 2 {
                assert!(lifted.net_max_layer(id) >= 6, "net {id} not lifted");
            }
        }
    }

    #[test]
    fn elevated_pins_skip_lower_via_stacks() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let some_net = n
            .nets()
            .find(|(_, net)| net.degree() >= 2)
            .map(|(id, _)| id)
            .unwrap();
        let mut lifted_only = RouteOptions::default();
        lifted_only.lift.insert(some_net, 6);
        let mut elevated = lifted_only.clone();
        elevated.elevated_pins.insert(some_net, 1);
        let (_, r1) = routed_c17(&lifted_only);
        let (_, r2) = routed_c17(&elevated);
        // With one elevated pin the lower-level via total must shrink.
        assert!(r2.via_counts().between(1) <= r1.via_counts().between(1));
    }

    #[test]
    fn wirelength_per_layer_sums_to_total() {
        let (_, r) = routed_c17(&RouteOptions::default());
        let sum: i64 = r.wirelength_per_layer_dbu().iter().sum();
        assert_eq!(sum, r.total_wirelength_dbu());
    }

    #[test]
    fn gcell_centers_inside_grid() {
        let (_, r) = routed_c17(&RouteOptions::default());
        let (nx, ny) = r.grid_dims();
        let c = r.gcell_center((nx - 1, ny - 1));
        assert!(c.x > 0 && c.y > 0);
    }

    #[test]
    fn layer_pairs_match_directions() {
        let tech = Technology::nangate45_10lm();
        let router = Router::new(&tech);
        let (h, v) = router.lift_pair(6);
        assert_eq!(tech.layer(h).direction, Direction::Horizontal);
        assert_eq!(tech.layer(v).direction, Direction::Vertical);
        assert!(h == 7 && v == 6);
        let (h, v) = router.lift_pair(8);
        assert!(h == 9 && v == 8);
        for frac in [0.001, 0.02, 0.08, 0.2, 0.5, 0.9] {
            let (h, v) = router.length_pair(frac);
            assert_eq!(tech.layer(h).direction, Direction::Horizontal);
            assert_eq!(tech.layer(v).direction, Direction::Vertical);
        }
    }
}
