//! Static timing analysis with a linear-delay gate model and lumped-RC
//! wires (Elmore-style).
//!
//! The paper reports delay overheads from Innovus at the slow corner; here
//! the per-net wire RC comes from the routed wirelength and layer stack, so
//! lifting a net to fat upper metal changes its delay the same way it does
//! in the paper (longer wire but lower resistance per µm).

use crate::route::RoutingResult;
use crate::tech::Technology;
use sm_netlist::graph::topo_order;
use sm_netlist::Netlist;

/// Result of a timing run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Arrival time (ps) at each net, indexed by `NetId`.
    pub net_arrival_ps: Vec<f64>,
    /// The worst arrival time over all primary outputs (critical-path
    /// delay).
    pub critical_path_ps: f64,
}

/// Wire capacitance of a net in fF given its routed length, averaged over
/// the layers it occupies.
fn wire_cap_ff(
    netlist: &Netlist,
    routes: &RoutingResult,
    tech: &Technology,
    net: sm_netlist::NetId,
) -> f64 {
    let _ = netlist;
    let len_um = routes.net_wirelength_dbu(net) as f64 / 1000.0;
    let max_layer = routes.net_max_layer(net).max(2);
    let cap_per_um = tech.avg_cap_ff_per_um(2, max_layer);
    let via_cap: f64 = routes
        .route(net)
        .vias
        .iter()
        .map(|v| (v.to_layer - v.from_layer) as f64 * tech.via_cap_ff)
        .sum();
    len_um * cap_per_um + via_cap
}

/// Wire resistance of a net in kΩ (for the Elmore term), averaged over its
/// layers.
fn wire_res_kohm(
    netlist: &Netlist,
    routes: &RoutingResult,
    tech: &Technology,
    net: sm_netlist::NetId,
) -> f64 {
    let _ = netlist;
    let len_um = routes.net_wirelength_dbu(net) as f64 / 1000.0;
    let max_layer = routes.net_max_layer(net).max(2);
    let slice = &tech.layers[1..max_layer as usize];
    let res_per_um = slice.iter().map(|l| l.res_ohm_per_um).sum::<f64>() / slice.len() as f64;
    let via_res: f64 = routes
        .route(net)
        .vias
        .iter()
        .map(|v| (v.to_layer - v.from_layer) as f64 * tech.via_res_ohm)
        .sum();
    (len_um * res_per_um + via_res) / 1000.0
}

/// Runs STA over the routed design.
///
/// Gate delay: `d = d0 + R_drive · C_load` with
/// `C_load = pin caps + wire cap`; wire delay adds the Elmore term
/// `R_wire · (C_wire / 2 + C_pins)`.
///
/// # Panics
///
/// Panics if the netlist is cyclic (impossible through public APIs).
pub fn analyze(netlist: &Netlist, routes: &RoutingResult, tech: &Technology) -> TimingReport {
    let mut arrival = vec![0.0f64; netlist.num_nets()];
    // Primary-input nets arrive at t = 0 (ideal drivers).
    let order = topo_order(netlist).expect("acyclic netlist");
    for c in order {
        let cell = netlist.cell(c);
        let lib = netlist.library().cell(cell.lib);
        let input_arrival = cell
            .inputs()
            .iter()
            .map(|&n| arrival[n.index()])
            .fold(0.0f64, f64::max);
        let out = cell.output();
        let c_pins = netlist.net_pin_load_ff(out);
        let c_wire = wire_cap_ff(netlist, routes, tech, out);
        let r_wire = wire_res_kohm(netlist, routes, tech, out);
        let gate_delay = lib.delay_ps(c_pins + c_wire);
        let wire_delay = r_wire * (c_wire / 2.0 + c_pins);
        arrival[out.index()] = input_arrival + gate_delay + wire_delay;
    }
    let critical = netlist
        .output_ports()
        .iter()
        .map(|p| arrival[p.net.index()])
        .fold(0.0f64, f64::max);
    TimingReport {
        net_arrival_ps: arrival,
        critical_path_ps: critical,
    }
}

/// Upsizes drivers of timing-critical, heavily loaded nets to the next
/// drive strength, mimicking the post-route optimization step of the flow.
/// Returns the number of cells resized.
pub fn resize_for_timing(
    netlist: &mut Netlist,
    routes: &RoutingResult,
    tech: &Technology,
    top_fraction: f64,
) -> usize {
    let report = analyze(netlist, routes, tech);
    let mut loads: Vec<(sm_netlist::CellId, f64)> = netlist
        .cells()
        .map(|(id, cell)| {
            let out = cell.output();
            let load = netlist.net_pin_load_ff(out) + wire_cap_ff(netlist, routes, tech, out);
            (id, load * report.net_arrival_ps[out.index()].max(1.0))
        })
        .collect();
    loads.sort_by(|a, b| b.1.total_cmp(&a.1));
    let budget = ((loads.len() as f64 * top_fraction).ceil() as usize).min(loads.len());
    let lib = netlist.library().clone();
    let mut resized = 0;
    let targets: Vec<sm_netlist::CellId> = loads[..budget].iter().map(|&(id, _)| id).collect();
    for id in targets {
        let cur = netlist.cell(id).lib;
        let cur_cell = lib.cell(cur);
        let variants = lib.drive_variants(cur_cell.function, cur_cell.num_inputs);
        if let Some(pos) = variants.iter().position(|&v| v == cur) {
            if pos + 1 < variants.len() {
                netlist.resize_cell(id, variants[pos + 1]);
                resized += 1;
            }
        }
    }
    resized
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::PlacementEngine;
    use crate::route::{RouteOptions, Router};
    use crate::Floorplan;
    use sm_netlist::parse::bench::{parse_bench, C17_BENCH};
    use sm_netlist::Library;

    fn setup() -> (Netlist, RoutingResult, Technology) {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(7).place(&n, &fp);
        let r = Router::new(&tech).route(&n, &pl, &fp, &RouteOptions::default());
        (n, r, tech)
    }

    #[test]
    fn critical_path_positive_and_bounded() {
        let (n, r, tech) = setup();
        let t = analyze(&n, &r, &tech);
        assert!(t.critical_path_ps > 0.0);
        // c17 is 3 NAND levels; even with wire delay it stays well under 1 ns.
        assert!(t.critical_path_ps < 1000.0, "{}", t.critical_path_ps);
    }

    #[test]
    fn deeper_path_is_slower() {
        let (n, r, tech) = setup();
        let t = analyze(&n, &r, &tech);
        // Output arrival must be at least the arrival of any internal net
        // on its fan-in path; spot-check monotonicity along one path.
        for (_, cell) in n.cells() {
            let out_arr = t.net_arrival_ps[cell.output().index()];
            for &i in cell.inputs() {
                assert!(out_arr > t.net_arrival_ps[i.index()]);
            }
        }
    }

    #[test]
    fn lifting_changes_delay() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(7).place(&n, &fp);
        let base = Router::new(&tech).route(&n, &pl, &fp, &RouteOptions::default());
        let mut opts = RouteOptions::default();
        for (id, net) in n.nets() {
            if net.degree() >= 2 {
                opts.lift.insert(id, 6);
            }
        }
        let lifted = Router::new(&tech).route(&n, &pl, &fp, &opts);
        let t_base = analyze(&n, &base, &tech).critical_path_ps;
        let t_lift = analyze(&n, &lifted, &tech).critical_path_ps;
        assert!(t_lift != t_base);
    }

    #[test]
    fn resize_upsizes_cells() {
        let (mut n, r, tech) = setup();
        let before = analyze(&n, &r, &tech).critical_path_ps;
        let resized = resize_for_timing(&mut n, &r, &tech, 0.3);
        assert!(resized > 0);
        let after = analyze(&n, &r, &tech).critical_path_ps;
        // Upsizing trades pin capacitance for drive strength; on a tiny
        // circuit the path may move either way but must stay in the same
        // ballpark.
        assert!(
            after > 0.0 && after <= before * 1.5,
            "before {before} after {after}"
        );
    }
}
