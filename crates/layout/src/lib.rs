//! Physical-design substrate: the stand-in for Cadence Innovus.
//!
//! The DAC'18 flow needs a place-and-route engine exhibiting the properties
//! proximity attacks exploit (and the defense destroys):
//!
//! * the placer puts connected cells close together ([`place`]),
//! * the router keeps short nets in the lower metal layers and counts every
//!   via ([`route`]),
//! * nets can be forced ("lifted") to route in a chosen upper layer, the
//!   mechanism behind correction cells and naive lifting,
//! * the layout can be split after any metal layer into an FEOL view (what
//!   the untrusted fab sees) and the BEOL ground truth ([`split`]),
//! * timing ([`timing`]) and power ([`power`]) models quantify the PPA cost
//!   the paper budgets (20% for ISCAS-85, 5% for superblue).
//!
//! # Example
//!
//! ```
//! use sm_netlist::{Library, parse::bench};
//! use sm_layout::{Floorplan, PlacementEngine, Router, RouteOptions, Technology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = Library::nangate45();
//! let netlist = bench::parse_bench("c17", bench::C17_BENCH, &lib)?;
//! let tech = Technology::nangate45_10lm();
//! let fp = Floorplan::for_netlist(&netlist, &tech, 0.7);
//! let placement = PlacementEngine::new(42).place(&netlist, &fp);
//! let routes = Router::new(&tech).route(&netlist, &placement, &fp, &RouteOptions::default());
//! assert!(routes.total_wirelength_dbu() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bisect;
mod codec;
mod floorplan;
mod fm;
mod geom;
mod tech;

pub mod analysis;
pub mod def;
pub mod hpwl;
pub mod place;
pub mod power;
pub mod route;
pub mod split;
pub mod timing;

pub use floorplan::Floorplan;
pub use geom::{Point, Rect, DBU_PER_UM};
pub use hpwl::{BBox, HpwlIndex};
pub use place::{PlaceMeter, Placement, PlacementEngine};
pub use route::{RouteOptions, Router, RoutingResult, ViaCounts};
pub use split::{split_layout, split_layout_with, SplitOptions, VpinSide};
pub use split::{FeolView, SplitLayout, Vpin};
pub use tech::{Direction, Layer, Technology, NUM_METAL_LAYERS};
