//! Recursive min-cut bisection global placement.
//!
//! The classic Breuer/Dunlop-Kernighan scheme: split the region along its
//! longer axis, partition the cells to minimize the number of cut nets
//! (greedy Fiduccia–Mattheyses-style refinement with terminal
//! propagation), and recurse. Connected cells end up in the same small
//! region — the tight driver/sink proximity that proximity attacks
//! exploit and that Table 1 of the paper quantifies.

use crate::geom::{Point, Rect};
use rand::rngs::StdRng;
use sm_netlist::{CellId, Driver, NetId, Netlist, Sink};
use std::collections::HashMap;

/// Per-cell estimated positions produced by recursive bisection.
pub(crate) fn bisection_positions(
    netlist: &Netlist,
    core: Rect,
    widths: &[i64],
    port_pos: impl Fn(Driver) -> Point + Copy,
    out_pos: impl Fn(usize) -> Point + Copy,
    seed_positions: &[Point],
    rng: &mut StdRng,
) -> Vec<Point> {
    let mut positions = seed_positions.to_vec();
    // Nets per cell (deduped), and pins per net, computed once.
    let mut nets_of: Vec<Vec<NetId>> = Vec::with_capacity(netlist.num_cells());
    for (_, cell) in netlist.cells() {
        let mut v: Vec<NetId> = cell.inputs().to_vec();
        v.push(cell.output());
        v.sort_unstable();
        v.dedup();
        nets_of.push(v);
    }
    let mut cells_of: Vec<Vec<CellId>> = vec![Vec::new(); netlist.num_nets()];
    for (id, cell) in netlist.cells() {
        for &n in &nets_of[id.index()] {
            cells_of[n.index()].push(id);
        }
        let _ = cell;
    }
    // Fixed (port) pin positions per net.
    let mut fixed_pins: Vec<Vec<Point>> = vec![Vec::new(); netlist.num_nets()];
    for (id, net) in netlist.nets() {
        if let Driver::Port(_) = net.driver() {
            fixed_pins[id.index()].push(port_pos(net.driver()));
        }
        for s in net.sinks() {
            if let Sink::Port(p) = s {
                fixed_pins[id.index()].push(out_pos(p.index()));
            }
        }
    }

    let all: Vec<CellId> = netlist.cells().map(|(id, _)| id).collect();
    let ctx = Ctx {
        widths,
        nets_of: &nets_of,
        cells_of: &cells_of,
        fixed_pins: &fixed_pins,
    };
    recurse(&ctx, all, core, &mut positions, rng, 0);
    positions
}

struct Ctx<'a> {
    widths: &'a [i64],
    nets_of: &'a [Vec<NetId>],
    cells_of: &'a [Vec<CellId>],
    fixed_pins: &'a [Vec<Point>],
}

fn recurse(
    ctx: &Ctx<'_>,
    cells: Vec<CellId>,
    region: Rect,
    positions: &mut [Point],
    rng: &mut StdRng,
    depth: u32,
) {
    if cells.is_empty() {
        return;
    }
    if cells.len() <= 3 || depth >= 24 || region.width() <= 1 || region.height() <= 1 {
        for c in cells {
            positions[c.index()] = region.center();
        }
        return;
    }
    let horizontal_axis = region.width() >= region.height();
    // Anchor coordinate per cell: average of connected pin positions
    // (current estimates + fixed ports), which implements terminal
    // propagation down the recursion.
    let coord = |p: Point| if horizontal_axis { p.x } else { p.y };
    let mut keyed: Vec<(i64, CellId)> = cells
        .iter()
        .map(|&c| {
            let mut sum = 0i64;
            let mut k = 0i64;
            for &n in &ctx.nets_of[c.index()] {
                for q in &ctx.fixed_pins[n.index()] {
                    sum += coord(*q);
                    k += 1;
                }
                for &other in &ctx.cells_of[n.index()] {
                    if other != c {
                        sum += coord(positions[other.index()]);
                        k += 1;
                    }
                }
            }
            let anchor = if k == 0 {
                coord(positions[c.index()])
            } else {
                sum / k
            };
            (anchor, c)
        })
        .collect();
    keyed.sort_unstable_by_key(|&(a, c)| (a, c));

    // Balanced split by cell width.
    let total: i64 = cells.iter().map(|&c| ctx.widths[c.index()]).sum();
    let mut acc = 0i64;
    let mut side = vec![false; keyed.len()]; // false = low side
    let mut low_width = 0i64;
    for (i, &(_, c)) in keyed.iter().enumerate() {
        if acc * 2 < total {
            side[i] = false;
            low_width += ctx.widths[c.index()];
        } else {
            side[i] = true;
        }
        acc += ctx.widths[c.index()];
    }

    // Fiduccia–Mattheyses refinement with gain buckets and best-prefix
    // rollback, within a ±10% balance corridor. External pins (ports and
    // cells outside this region) are fixed on their geometric side
    // (terminal propagation).
    let index_of: HashMap<CellId, usize> = keyed
        .iter()
        .enumerate()
        .map(|(i, &(_, c))| (c, i))
        .collect();
    let cut_coord = if horizontal_axis {
        region.lo.x + region.width() / 2
    } else {
        region.lo.y + region.height() / 2
    };
    let balance_slack = total / 10 + 1;
    let target_low = total / 2;

    // Per-net pin bookkeeping restricted to this region, plus fixed pins.
    // Collect the distinct nets touching the region once.
    let mut region_nets: Vec<NetId> = keyed
        .iter()
        .flat_map(|&(_, c)| ctx.nets_of[c.index()].iter().copied())
        .collect();
    region_nets.sort_unstable();
    region_nets.dedup();
    let net_slot: HashMap<NetId, usize> = region_nets
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); region_nets.len()];
    let mut fixed = vec![[0u32; 2]; region_nets.len()];
    for (i, &(_, c)) in keyed.iter().enumerate() {
        for &n in &ctx.nets_of[c.index()] {
            members[net_slot[&n]].push(i);
        }
    }
    for (slot, &n) in region_nets.iter().enumerate() {
        for q in &ctx.fixed_pins[n.index()] {
            let side = usize::from(coord(*q) >= cut_coord);
            fixed[slot][side] += 1;
        }
        for &other in &ctx.cells_of[n.index()] {
            if !index_of.contains_key(&other) {
                let side = usize::from(coord(positions[other.index()]) >= cut_coord);
                fixed[slot][side] += 1;
            }
        }
    }

    let m = keyed.len();
    let max_deg = keyed
        .iter()
        .map(|&(_, c)| ctx.nets_of[c.index()].len())
        .max()
        .unwrap_or(1) as i32;

    for _pass in 0..3 {
        // Pin counts per net per side for the current partition.
        let mut count = vec![[0u32; 2]; region_nets.len()];
        for (slot, mem) in members.iter().enumerate() {
            count[slot] = fixed[slot];
            for &i in mem {
                count[slot][usize::from(side[i])] += 1;
            }
        }
        // Initial gains.
        let mut gain = vec![0i32; m];
        for (i, &(_, c)) in keyed.iter().enumerate() {
            let from = usize::from(side[i]);
            let to = 1 - from;
            for &n in &ctx.nets_of[c.index()] {
                let slot = net_slot[&n];
                if count[slot][from] == 1 {
                    gain[i] += 1;
                }
                if count[slot][to] == 0 {
                    gain[i] -= 1;
                }
            }
        }
        // Gain buckets.
        let offset = max_deg;
        let nbuckets = (2 * max_deg + 1) as usize;
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); nbuckets];
        for i in 0..m {
            buckets[(gain[i] + offset) as usize].push(i);
        }
        let mut locked = vec![false; m];
        let mut cur_low = low_width;
        let mut best_delta = 0i32;
        let mut cum_delta = 0i32;
        let mut moves: Vec<usize> = Vec::with_capacity(m);
        let mut best_prefix = 0usize;
        loop {
            // Highest-gain movable cell honoring balance.
            let mut chosen = None;
            'find: for b in (0..nbuckets).rev() {
                let mut k = buckets[b].len();
                while k > 0 {
                    k -= 1;
                    let i = buckets[b][k];
                    if locked[i] || (gain[i] + offset) as usize != b {
                        buckets[b].swap_remove(k);
                        if !locked[i] {
                            buckets[(gain[i] + offset) as usize].push(i);
                        }
                        continue;
                    }
                    let w = ctx.widths[keyed[i].1.index()];
                    let new_low = if side[i] { cur_low + w } else { cur_low - w };
                    if (new_low - target_low).abs() <= balance_slack {
                        chosen = Some((b, k, i));
                        break 'find;
                    }
                }
            }
            let Some((b, k, i)) = chosen else { break };
            buckets[b].swap_remove(k);
            locked[i] = true;
            let w = ctx.widths[keyed[i].1.index()];
            let from = usize::from(side[i]);
            let to = 1 - from;
            cum_delta += gain[i];
            // FM delta updates on all nets of the moving cell.
            for &n in &ctx.nets_of[keyed[i].1.index()] {
                let slot = net_slot[&n];
                if count[slot][to] == 0 {
                    for &d in &members[slot] {
                        if !locked[d] {
                            gain[d] += 1;
                            buckets[(gain[d] + offset) as usize].push(d);
                        }
                    }
                } else if count[slot][to] == 1 {
                    for &d in &members[slot] {
                        if !locked[d] && usize::from(side[d]) == to {
                            gain[d] -= 1;
                            buckets[(gain[d] + offset) as usize].push(d);
                        }
                    }
                }
                count[slot][from] -= 1;
                count[slot][to] += 1;
                if count[slot][from] == 0 {
                    for &d in &members[slot] {
                        if !locked[d] {
                            gain[d] -= 1;
                            buckets[(gain[d] + offset) as usize].push(d);
                        }
                    }
                } else if count[slot][from] == 1 {
                    for &d in &members[slot] {
                        if !locked[d] && usize::from(side[d]) == from {
                            gain[d] += 1;
                            buckets[(gain[d] + offset) as usize].push(d);
                        }
                    }
                }
            }
            side[i] = !side[i];
            cur_low = if to == 0 { cur_low + w } else { cur_low - w };
            moves.push(i);
            if cum_delta > best_delta {
                best_delta = cum_delta;
                best_prefix = moves.len();
            }
        }
        // Roll back everything after the best prefix.
        for &i in &moves[best_prefix..] {
            let w = ctx.widths[keyed[i].1.index()];
            if side[i] {
                cur_low += w;
            } else {
                cur_low -= w;
            }
            side[i] = !side[i];
        }
        low_width = cur_low;
        if best_delta == 0 {
            break;
        }
    }
    let _ = rng;

    // Sub-regions proportional to the area each side needs.
    let frac = low_width.max(1) as f64 / total.max(1) as f64;
    let (low_region, high_region) = if horizontal_axis {
        let cut =
            region.lo.x + ((region.width() as f64 * frac) as i64).clamp(1, region.width() - 1);
        (
            Rect::new(region.lo, Point::new(cut, region.hi.y)),
            Rect::new(Point::new(cut, region.lo.y), region.hi),
        )
    } else {
        let cut =
            region.lo.y + ((region.height() as f64 * frac) as i64).clamp(1, region.height() - 1);
        (
            Rect::new(region.lo, Point::new(region.hi.x, cut)),
            Rect::new(Point::new(region.lo.x, cut), region.hi),
        )
    };
    let mut low_cells = Vec::new();
    let mut high_cells = Vec::new();
    for (i, &(_, c)) in keyed.iter().enumerate() {
        if side[i] {
            high_cells.push(c);
        } else {
            low_cells.push(c);
        }
        positions[c.index()] = if side[i] {
            high_region.center()
        } else {
            low_region.center()
        };
    }
    recurse(ctx, low_cells, low_region, positions, rng, depth + 1);
    recurse(ctx, high_cells, high_region, positions, rng, depth + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sm_netlist::{GateFn, Library, NetlistBuilder};

    /// Two 8-cell clusters joined by one net: bisection must keep each
    /// cluster on one side (the bridging net is the only cut).
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn fm_separates_two_clusters() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("clusters", &lib);
        let mut cluster_roots = Vec::new();
        for k in 0..2 {
            let a = b.input(format!("a{k}"));
            let c = b.input(format!("b{k}"));
            // A small dense cone: every gate feeds the next two.
            let mut sigs = vec![a, c];
            for i in 0..8 {
                let x = sigs[sigs.len() - 1];
                let y = sigs[sigs.len() - 2];
                let g = b
                    .gate(
                        if i % 2 == 0 {
                            GateFn::Nand
                        } else {
                            GateFn::Nor
                        },
                        &[x, y],
                    )
                    .unwrap();
                sigs.push(g);
            }
            cluster_roots.push(*sigs.last().unwrap());
        }
        let bridge = b
            .gate(GateFn::And, &[cluster_roots[0], cluster_roots[1]])
            .unwrap();
        b.output("y", bridge);
        let n = b.finish().unwrap();

        let core = Rect::new(Point::new(0, 0), Point::new(100_000, 100_000));
        let widths = vec![600i64; n.num_cells()];
        let seeds = vec![core.center(); n.num_cells()];
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let positions = bisection_positions(
            &n,
            core,
            &widths,
            |_| core.center(),
            |_| core.center(),
            &seeds,
            &mut rng,
        );
        // Cells of the same cluster must be near each other; the two
        // clusters must be separated by more than the intra-cluster spread.
        let cluster_of = |i: usize| {
            if i < 8 {
                0
            } else if i < 16 {
                1
            } else {
                2
            }
        };
        let mut centers = [Point::new(0, 0); 2];
        for cl in 0..2 {
            let members: Vec<usize> = (0..16).filter(|&i| cluster_of(i) == cl).collect();
            let sx: i64 = members.iter().map(|&i| positions[i].x).sum();
            let sy: i64 = members.iter().map(|&i| positions[i].y).sum();
            centers[cl] = Point::new(sx / members.len() as i64, sy / members.len() as i64);
        }
        let separation = centers[0].manhattan(centers[1]);
        let spread: i64 = (0..8)
            .map(|i| positions[i].manhattan(centers[0]))
            .max()
            .unwrap();
        assert!(
            separation > spread,
            "clusters not separated: sep {separation}, spread {spread}"
        );
    }

    /// Bisection positions stay inside the region and are deterministic.
    #[test]
    fn positions_bounded_and_deterministic() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("chain", &lib);
        let mut cur = b.input("a");
        for _ in 0..32 {
            cur = b.gate(GateFn::Inv, &[cur]).unwrap();
        }
        b.output("y", cur);
        let n = b.finish().unwrap();
        let core = Rect::new(Point::new(0, 0), Point::new(50_000, 50_000));
        let widths = vec![400i64; n.num_cells()];
        let seeds = vec![core.center(); n.num_cells()];
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            bisection_positions(
                &n,
                core,
                &widths,
                |_| Point::new(0, 25_000),
                |_| Point::new(50_000, 25_000),
                &seeds,
                &mut rng,
            )
        };
        let a = run(5);
        let b2 = run(5);
        assert_eq!(a, b2);
        for p in &a {
            assert!(core.contains(*p) || (p.x == core.hi.x / 2 || p.y == core.hi.y / 2));
            assert!(p.x >= 0 && p.y >= 0 && p.x <= 50_000 && p.y <= 50_000);
        }
    }
}
