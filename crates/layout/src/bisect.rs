//! Recursive min-cut bisection global placement.
//!
//! The classic Breuer/Dunlop-Kernighan scheme: split the region along its
//! longer axis, partition the cells to minimize the number of cut nets
//! (greedy Fiduccia–Mattheyses-style refinement with terminal
//! propagation), and recurse. Connected cells end up in the same small
//! region — the tight driver/sink proximity that proximity attacks
//! exploit and that Table 1 of the paper quantifies.
//!
//! Hot-path notes:
//!
//! * connectivity comes from the caller's CSR [`ConnectivityIndex`]
//!   (one build serves both bisection cycles and the detailed passes)
//!   instead of per-call `Vec<Vec<_>>` rebuilds;
//! * the FM refinement itself lives in [`crate::fm`]: an arena-packed
//!   gain-bucket kernel fed region-local CSR adjacency (built here in
//!   the same sweep as the member lists), byte-identical to the
//!   retained reference implementation — debug builds shadow every
//!   region through both and assert identical move sequences;
//! * the per-region cell/net lookup tables are flat scratch arrays
//!   reset on exit, not `HashMap`s rebuilt at every recursion level;
//! * each branch carries an independent derived seed
//!   ([`sm_exec::seed::derive`], the `Job::derived_seed` scheme), so no
//!   mutable RNG state is threaded through the recursion;
//! * the anchor (terminal-propagation) sweep of large regions fans out
//!   on the caller's [`Budget`] — the persistent pool shared by the
//!   whole campaign, **not** a fresh machine-parallelism executor per
//!   region — and its output order is input order, so the result is
//!   bit-identical to the sequential sweep while total live worker
//!   threads stay within the configured thread budget.
//!
//! The two *halves* of one region are **not** recursed concurrently:
//! terminal propagation makes the second half read the first half's
//! fully-refined positions, so sibling-level parallelism would change
//! (not just reorder) the placement. The deterministic parallelism here
//! is confined to the data-parallel anchor sweep and, one level up, to
//! building a bundle's independent layouts concurrently.

use crate::fm;
use crate::geom::{Point, Rect};
use sm_exec::Budget;
use sm_netlist::{CellId, ConnectivityIndex, Driver, NetId, Netlist, Sink};

/// Regions with at least this many cells compute their anchor sweep on
/// the budget's pool; smaller regions stay sequential (scheduling
/// overhead would dominate). Quick ISCAS designs never reach it; scaled
/// superblue top-level regions do.
const PAR_ANCHOR_CELLS: usize = 4096;

/// Per-cell estimated positions produced by recursive bisection, or
/// `None` if the budget's [`sm_exec::CancelToken`] fired. Cancellation
/// is honored only at result-neutral checkpoints — between recursion
/// levels and between FM passes — so a completed run is byte-identical
/// whether or not a token was armed.
///
/// `seed` labels the root branch stream (derived per branch with the
/// `Job::derived_seed` mixing scheme); the current refinement draws no
/// random numbers, so the seed only fixes the stream identities.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bisection_positions(
    netlist: &Netlist,
    conn: &ConnectivityIndex,
    core: Rect,
    widths: &[i64],
    port_pos: impl Fn(Driver) -> Point + Copy,
    out_pos: impl Fn(usize) -> Point + Copy,
    seed_positions: &[Point],
    seed: u64,
    budget: &Budget,
    fm_ns: Option<&std::sync::atomic::AtomicU64>,
) -> Option<Vec<Point>> {
    let mut positions = seed_positions.to_vec();
    // Fixed (port) pin positions per net.
    let mut fixed_pins: Vec<Vec<Point>> = vec![Vec::new(); netlist.num_nets()];
    for (id, net) in netlist.nets() {
        if let Driver::Port(_) = net.driver() {
            fixed_pins[id.index()].push(port_pos(net.driver()));
        }
        for s in net.sinks() {
            if let Sink::Port(p) = s {
                fixed_pins[id.index()].push(out_pos(p.index()));
            }
        }
    }

    let all: Vec<CellId> = netlist.cells().map(|(id, _)| id).collect();
    let ctx = Ctx {
        widths,
        conn,
        fixed_pins: &fixed_pins,
        budget,
        fm_ns,
    };
    let mut scratch = Scratch {
        cell_mark: vec![u32::MAX; netlist.num_cells()],
        net_slot: vec![u32::MAX; netlist.num_nets()],
        bufs: Buffers::default(),
    };
    if !recurse(&ctx, all, core, &mut positions, &mut scratch, seed, 0) {
        return None;
    }
    Some(positions)
}

struct Ctx<'a> {
    widths: &'a [i64],
    conn: &'a ConnectivityIndex,
    fixed_pins: &'a [Vec<Point>],
    budget: &'a Budget,
    /// FM-refinement wall-clock accumulator (nanoseconds), summed over
    /// every region of the recursion; `None` when the caller does not
    /// meter. Observability only — never read by the algorithm.
    fm_ns: Option<&'a std::sync::atomic::AtomicU64>,
}

/// Flat lookup tables shared down the (sequential) recursion: an
/// in-region membership mark per cell (`u32::MAX` = outside the current
/// region, anything else = inside; the value carries no meaning) and
/// the slot of a net within the current region's net list. Every level
/// sets its own entries on entry and resets them before recursing, so
/// no `HashMap` is ever (re)built.
struct Scratch {
    cell_mark: Vec<u32>,
    net_slot: Vec<u32>,
    bufs: Buffers,
}

/// Pooled per-region working buffers. A region's buffers are dead by
/// the time it recurses (everything is consumed before the child
/// calls), so one pool serves the whole recursion: regions clear
/// lengths but never reallocate, which removes roughly a dozen heap
/// allocations per region from the hot path.
#[derive(Default)]
struct Buffers {
    region_nets: Vec<NetId>,
    member_counts: Vec<u32>,
    net_sum: Vec<i64>,
    net_pins: Vec<i64>,
    fixed: Vec<[u32; 2]>,
    member_off: Vec<u32>,
    cursor: Vec<u32>,
    member_flat: Vec<u32>,
    cell_off: Vec<u32>,
    cell_slots: Vec<u32>,
    keyed: Vec<(i64, CellId)>,
    state: Vec<fm::FmCell>,
    fm: fm::FmScratch,
}

/// Returns `false` if the budget's token cancelled the placement (the
/// positions array is then abandoned by the caller).
fn recurse(
    ctx: &Ctx<'_>,
    cells: Vec<CellId>,
    region: Rect,
    positions: &mut [Point],
    scratch: &mut Scratch,
    branch_seed: u64,
    depth: u32,
) -> bool {
    if cells.is_empty() {
        return true;
    }
    // Between-level checkpoint: nothing of this region is computed yet,
    // so aborting here never leaks a partial result.
    if ctx.budget.is_cancelled() {
        return false;
    }
    if cells.len() <= 3 || depth >= 24 || region.width() <= 1 || region.height() <= 1 {
        for c in cells {
            positions[c.index()] = region.center();
        }
        return true;
    }
    let horizontal_axis = region.width() >= region.height();
    let coord = move |p: Point| if horizontal_axis { p.x } else { p.y };
    let cut_coord = if horizontal_axis {
        region.lo.x + region.width() / 2
    } else {
        region.lo.y + region.height() / 2
    };
    let Scratch {
        cell_mark,
        net_slot,
        bufs,
    } = &mut *scratch;

    // The distinct nets touching the region, each mapped to a dense
    // slot, and the in-region membership marks — both via the flat
    // scratch tables (no HashMap, no sort: nothing downstream depends
    // on slot numbering, only on per-net values). `member_counts`
    // doubles as the CSR offset seed for the member lists built later.
    let region_nets = &mut bufs.region_nets;
    region_nets.clear();
    let member_counts = &mut bufs.member_counts;
    member_counts.clear();
    for &c in &cells {
        cell_mark[c.index()] = 0; // in-region membership mark
        for &n in ctx.conn.cell_nets(c) {
            let slot = &mut net_slot[n.index()];
            if *slot == u32::MAX {
                *slot = region_nets.len() as u32;
                region_nets.push(n);
                member_counts.push(1);
            } else {
                member_counts[*slot as usize] += 1;
            }
        }
    }

    // One pass per region net computes both the anchor ingredients
    // (coordinate sum + pin count) and the fixed-side counts of
    // external pins (ports and out-of-region cells — terminal
    // propagation). Summing each net once and subtracting the cell's
    // own contribution is linear in total pins — the naive per-cell
    // walk is quadratic in net fanout — and integer addition is
    // order-independent, so the anchors (and everything downstream)
    // are bit-identical.
    let net_sum = &mut bufs.net_sum;
    net_sum.clear();
    let net_pins = &mut bufs.net_pins;
    net_pins.clear();
    let fixed = &mut bufs.fixed;
    fixed.clear();
    fixed.resize(region_nets.len(), [0u32; 2]);
    for (slot, &n) in region_nets.iter().enumerate() {
        let mut sum = 0i64;
        let mut pins = 0i64;
        for q in &ctx.fixed_pins[n.index()] {
            sum += coord(*q);
            pins += 1;
            fixed[slot][usize::from(coord(*q) >= cut_coord)] += 1;
        }
        for &other in ctx.conn.net_cells(n) {
            let oc = coord(positions[other.index()]);
            sum += oc;
            pins += 1;
            if cell_mark[other.index()] == u32::MAX {
                fixed[slot][usize::from(oc >= cut_coord)] += 1;
            }
        }
        net_sum.push(sum);
        net_pins.push(pins);
    }
    let anchor_of = |c: CellId, positions: &[Point]| -> (i64, CellId) {
        let own = coord(positions[c.index()]);
        let mut sum = 0i64;
        let mut k = 0i64;
        for &n in ctx.conn.cell_nets(c) {
            let slot = net_slot[n.index()] as usize;
            sum += net_sum[slot] - own;
            k += net_pins[slot] - 1;
        }
        let anchor = if k == 0 { own } else { sum / k };
        (anchor, c)
    };
    // Pure reads over the entry snapshot, so large regions fan the
    // sweep out on the caller's budget (the pool shared with the rest
    // of the campaign — never a private machine-parallelism executor)
    // with bit-identical (input-ordered) results.
    let keyed = &mut bufs.keyed;
    keyed.clear();
    if cells.len() >= PAR_ANCHOR_CELLS && ctx.budget.threads() > 1 {
        let snapshot: &[Point] = positions;
        keyed.extend(ctx.budget.map(&cells, |_, &c| anchor_of(c, snapshot)));
    } else {
        keyed.extend(cells.iter().map(|&c| anchor_of(c, positions)));
    }
    keyed.sort_unstable_by_key(|&(a, c)| (a, c));

    // Balanced split by cell width. Width, gain, side and lock state
    // live in one packed 8-byte per-cell record ([`fm::FmCell`]): the
    // FM selection scan then touches a single cache line per probe
    // (the scan revisits balance-blocked candidates many times, so its
    // memory traffic dominates refinement cost).
    let total: i64 = cells.iter().map(|&c| ctx.widths[c.index()]).sum();
    let state = &mut bufs.state;
    state.clear();
    state.extend(keyed.iter().map(|&(_, c)| {
        debug_assert!(ctx.widths[c.index()] <= u32::MAX as i64);
        fm::FmCell::new(ctx.widths[c.index()] as u32, false)
    }));
    let mut acc = 0i64;
    let mut low_width = 0i64;
    for s in state.iter_mut() {
        if acc * 2 < total {
            low_width += s.width as i64;
        } else {
            *s = fm::FmCell::new(s.width, true);
        }
        acc += s.width as i64;
    }

    // Fiduccia–Mattheyses refinement within a ±10% balance corridor.
    // External pins (ports and cells outside this region) are fixed on
    // their geometric side (terminal propagation; folded into `fixed`
    // above).
    let balance_slack = total / 10 + 1;
    let target_low = total / 2;

    // Region-local adjacency in both directions, built in one sweep:
    // per-net member lists (CSR from the counts gathered during net
    // discovery) and per-cell net-slot lists in `cell_nets` order. The
    // refinement kernel reads only these flat arrays — never the global
    // connectivity or the net-slot table.
    let member_off = &mut bufs.member_off;
    member_off.clear();
    member_off.push(0);
    for (slot, &cnt) in member_counts.iter().enumerate() {
        member_off.push(member_off[slot] + cnt);
    }
    let cursor = &mut bufs.cursor;
    cursor.clear();
    cursor.extend_from_slice(member_off);
    let member_flat = &mut bufs.member_flat;
    member_flat.clear();
    member_flat.resize(member_off[region_nets.len()] as usize, 0);
    let cell_off = &mut bufs.cell_off;
    cell_off.clear();
    cell_off.push(0);
    let cell_slots = &mut bufs.cell_slots;
    cell_slots.clear();
    for (i, &(_, c)) in keyed.iter().enumerate() {
        for &n in ctx.conn.cell_nets(c) {
            let slot = net_slot[n.index()];
            member_flat[cursor[slot as usize] as usize] = i as u32;
            cursor[slot as usize] += 1;
            cell_slots.push(slot);
        }
        cell_off.push(cell_slots.len() as u32);
    }

    let max_deg = keyed
        .iter()
        .map(|&(_, c)| ctx.conn.cell_nets(c).len())
        .max()
        .unwrap_or(1) as i32;
    debug_assert!(max_deg <= i16::MAX as i32, "cell degree exceeds i16 gain");

    let problem = fm::FmProblem {
        member_off: member_off.as_slice(),
        member_flat: member_flat.as_slice(),
        cell_off: cell_off.as_slice(),
        cell_slots: cell_slots.as_slice(),
        fixed: fixed.as_slice(),
        target_low,
        balance_slack,
        offset: max_deg,
    };
    // Debug builds shadow every region through the retained reference
    // implementation and assert identical move sequences, best
    // prefixes, cut deltas, final sides and widths — the strongest
    // possible pin of the arena kernel to the original algorithm,
    // exercised by every placement any test performs.
    #[cfg(debug_assertions)]
    let initial_state = state.clone();
    #[cfg(debug_assertions)]
    let mut prod_trace = fm::FmTrace::default();
    #[cfg(debug_assertions)]
    let trace_arg = Some(&mut prod_trace);
    #[cfg(not(debug_assertions))]
    let trace_arg = None;
    let cancel = ctx.budget.cancel_token();
    let fm_start = ctx.fm_ns.map(|_| std::time::Instant::now());
    let refined = fm::refine(&problem, state, &mut bufs.fm, low_width, cancel, trace_arg);
    if let (Some(acc), Some(start)) = (ctx.fm_ns, fm_start) {
        acc.fetch_add(
            start.elapsed().as_nanos() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
    }
    let Some(new_low) = refined else {
        return false;
    };
    #[cfg(debug_assertions)]
    {
        let mut ref_state = initial_state;
        let mut ref_trace = fm::FmTrace::default();
        // The reference runs on an unarmed token: the production run
        // completed all its passes, so the shadow must too even if the
        // real token fires while it replays.
        let never = sm_exec::CancelToken::new();
        let ref_low = fm::refine_reference(
            &problem,
            &mut ref_state,
            low_width,
            &never,
            Some(&mut ref_trace),
        );
        debug_assert_eq!(ref_low, Some(new_low), "FM kernel diverged on low width");
        debug_assert_eq!(ref_trace, prod_trace, "FM kernel diverged on move trace");
        debug_assert_eq!(&ref_state[..], &state[..], "FM kernel diverged on sides");
    }
    let low_width = new_low;

    // Sub-regions proportional to the area each side needs.
    let frac = low_width.max(1) as f64 / total.max(1) as f64;
    let (low_region, high_region) = if horizontal_axis {
        let cut =
            region.lo.x + ((region.width() as f64 * frac) as i64).clamp(1, region.width() - 1);
        (
            Rect::new(region.lo, Point::new(cut, region.hi.y)),
            Rect::new(Point::new(cut, region.lo.y), region.hi),
        )
    } else {
        let cut =
            region.lo.y + ((region.height() as f64 * frac) as i64).clamp(1, region.height() - 1);
        (
            Rect::new(region.lo, Point::new(region.hi.x, cut)),
            Rect::new(Point::new(region.lo.x, cut), region.hi),
        )
    };
    let mut low_cells = Vec::new();
    let mut high_cells = Vec::new();
    for (i, &(_, c)) in keyed.iter().enumerate() {
        if state[i].is_high() {
            high_cells.push(c);
            positions[c.index()] = high_region.center();
        } else {
            low_cells.push(c);
            positions[c.index()] = low_region.center();
        }
    }
    // Reset this region's scratch entries before descending: the tables
    // are region-scoped, and a child must not mistake its sibling's
    // cells for in-region ones.
    for &(_, c) in keyed.iter() {
        cell_mark[c.index()] = u32::MAX;
    }
    for &n in region_nets.iter() {
        net_slot[n.index()] = u32::MAX;
    }
    let low_seed = sm_exec::seed::derive(branch_seed, 0);
    let high_seed = sm_exec::seed::derive(branch_seed, 1);
    recurse(
        ctx,
        low_cells,
        low_region,
        positions,
        scratch,
        low_seed,
        depth + 1,
    ) && recurse(
        ctx,
        high_cells,
        high_region,
        positions,
        scratch,
        high_seed,
        depth + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_netlist::{GateFn, Library, NetlistBuilder};

    /// Two 8-cell clusters joined by one net: bisection must keep each
    /// cluster on one side (the bridging net is the only cut).
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn fm_separates_two_clusters() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("clusters", &lib);
        let mut cluster_roots = Vec::new();
        for k in 0..2 {
            let a = b.input(format!("a{k}"));
            let c = b.input(format!("b{k}"));
            // A small dense cone: every gate feeds the next two.
            let mut sigs = vec![a, c];
            for i in 0..8 {
                let x = sigs[sigs.len() - 1];
                let y = sigs[sigs.len() - 2];
                let g = b
                    .gate(
                        if i % 2 == 0 {
                            GateFn::Nand
                        } else {
                            GateFn::Nor
                        },
                        &[x, y],
                    )
                    .unwrap();
                sigs.push(g);
            }
            cluster_roots.push(*sigs.last().unwrap());
        }
        let bridge = b
            .gate(GateFn::And, &[cluster_roots[0], cluster_roots[1]])
            .unwrap();
        b.output("y", bridge);
        let n = b.finish().unwrap();

        let core = Rect::new(Point::new(0, 0), Point::new(100_000, 100_000));
        let widths = vec![600i64; n.num_cells()];
        let seeds = vec![core.center(); n.num_cells()];
        let conn = ConnectivityIndex::build(&n);
        let positions = bisection_positions(
            &n,
            &conn,
            core,
            &widths,
            |_| core.center(),
            |_| core.center(),
            &seeds,
            3,
            &Budget::default(),
            None,
        )
        .expect("unarmed budget cannot cancel");
        // Cells of the same cluster must be near each other; the two
        // clusters must be separated by more than the intra-cluster spread.
        let cluster_of = |i: usize| {
            if i < 8 {
                0
            } else if i < 16 {
                1
            } else {
                2
            }
        };
        let mut centers = [Point::new(0, 0); 2];
        for cl in 0..2 {
            let members: Vec<usize> = (0..16).filter(|&i| cluster_of(i) == cl).collect();
            let sx: i64 = members.iter().map(|&i| positions[i].x).sum();
            let sy: i64 = members.iter().map(|&i| positions[i].y).sum();
            centers[cl] = Point::new(sx / members.len() as i64, sy / members.len() as i64);
        }
        let separation = centers[0].manhattan(centers[1]);
        let spread: i64 = (0..8)
            .map(|i| positions[i].manhattan(centers[0]))
            .max()
            .unwrap();
        assert!(
            separation > spread,
            "clusters not separated: sep {separation}, spread {spread}"
        );
    }

    /// Bisection positions stay inside the region and are deterministic.
    #[test]
    fn positions_bounded_and_deterministic() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("chain", &lib);
        let mut cur = b.input("a");
        for _ in 0..32 {
            cur = b.gate(GateFn::Inv, &[cur]).unwrap();
        }
        b.output("y", cur);
        let n = b.finish().unwrap();
        let core = Rect::new(Point::new(0, 0), Point::new(50_000, 50_000));
        let widths = vec![400i64; n.num_cells()];
        let seeds = vec![core.center(); n.num_cells()];
        let conn = ConnectivityIndex::build(&n);
        let run = |seed: u64| {
            bisection_positions(
                &n,
                &conn,
                core,
                &widths,
                |_| Point::new(0, 25_000),
                |_| Point::new(50_000, 25_000),
                &seeds,
                seed,
                &Budget::default(),
                None,
            )
            .expect("unarmed budget cannot cancel")
        };
        let a = run(5);
        let b2 = run(5);
        assert_eq!(a, b2);
        for p in &a {
            assert!(core.contains(*p) || (p.x == core.hi.x / 2 || p.y == core.hi.y / 2));
            assert!(p.x >= 0 && p.y >= 0 && p.x <= 50_000 && p.y <= 50_000);
        }
    }

    /// The oversubscription fix, asserted at the bisection level: a
    /// design large enough to trigger the parallel anchor sweep
    /// (≥ `PAR_ANCHOR_CELLS` cells in the top regions) must keep every
    /// live worker thread within the caller's budget — the sweep runs on
    /// the budget's shared pool, never on a fresh machine-parallelism
    /// executor — and still produce the bit-identical sequential result.
    #[test]
    fn large_anchor_sweep_respects_the_thread_budget() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("wide", &lib);
        // A wide layered mesh comfortably past the parallel threshold.
        let mut sigs: Vec<sm_netlist::NetId> = (0..64).map(|i| b.input(format!("i{i}"))).collect();
        let mut total = 0usize;
        'grow: loop {
            let mut next = Vec::with_capacity(sigs.len());
            for w in sigs.windows(2) {
                let g = b
                    .gate(
                        if total.is_multiple_of(2) {
                            GateFn::Nand
                        } else {
                            GateFn::Nor
                        },
                        &[w[0], w[1]],
                    )
                    .unwrap();
                next.push(g);
                total += 1;
                if total >= PAR_ANCHOR_CELLS + 256 {
                    break 'grow;
                }
            }
            next.push(sigs[0]);
            sigs = next;
        }
        b.output("y", sigs[0]);
        let n = b.finish().unwrap();
        assert!(n.num_cells() >= PAR_ANCHOR_CELLS);

        let core = Rect::new(Point::new(0, 0), Point::new(400_000, 400_000));
        let widths = vec![400i64; n.num_cells()];
        let seeds = vec![core.center(); n.num_cells()];
        let conn = ConnectivityIndex::build(&n);
        let run = |budget: &Budget| {
            bisection_positions(
                &n,
                &conn,
                core,
                &widths,
                |_| core.center(),
                |_| core.center(),
                &seeds,
                7,
                budget,
                None,
            )
            .expect("unarmed budget cannot cancel")
        };
        let budget = Budget::with_threads(Some(2));
        let parallel = run(&budget);
        assert!(
            budget.pool().peak_live() <= 2,
            "anchor sweep exceeded its 2-thread budget: peak {}",
            budget.pool().peak_live()
        );
        // Bit-identical to the serial sweep.
        let serial = run(&Budget::with_threads(Some(1)));
        assert_eq!(parallel, serial);
    }
}
