//! Integer geometry in database units (1 DBU = 1 nm).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Database units per micron (1 DBU = 1 nm).
pub const DBU_PER_UM: i64 = 1000;

/// A point on the die, in DBU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Point {
    /// X coordinate in DBU.
    pub x: i64,
    /// Y coordinate in DBU.
    pub y: i64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Manhattan distance to `other` in DBU.
    #[inline]
    pub fn manhattan(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Manhattan distance in microns.
    #[inline]
    pub fn manhattan_um(self, other: Point) -> f64 {
        self.manhattan(other) as f64 / DBU_PER_UM as f64
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// An axis-aligned rectangle `[lo, hi)`, in DBU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Rect {
    /// Lower-left corner (inclusive).
    pub lo: Point,
    /// Upper-right corner (exclusive).
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from corners.
    ///
    /// # Panics
    ///
    /// Panics if `hi` is not ≥ `lo` on both axes.
    pub fn new(lo: Point, hi: Point) -> Self {
        assert!(hi.x >= lo.x && hi.y >= lo.y, "degenerate rectangle");
        Rect { lo, hi }
    }

    /// Width in DBU.
    pub fn width(&self) -> i64 {
        self.hi.x - self.lo.x
    }

    /// Height in DBU.
    pub fn height(&self) -> i64 {
        self.hi.y - self.lo.y
    }

    /// Area in DBU².
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// Geometric center.
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) / 2, (self.lo.y + self.hi.y) / 2)
    }

    /// `true` if `p` lies inside (half-open semantics).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x < self.hi.x && p.y >= self.lo.y && p.y < self.hi.y
    }

    /// `true` if the rectangles overlap (half-open semantics).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
    }

    /// Clamps `p` into the rectangle (hi-exclusive by one DBU).
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.lo.x, self.hi.x - 1),
            p.y.clamp(self.lo.y, self.hi.y - 1),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} – {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        let a = Point::new(0, 0);
        let b = Point::new(3000, -4000);
        assert_eq!(a.manhattan(b), 7000);
        assert!((a.manhattan_um(b) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn rect_properties() {
        let r = Rect::new(Point::new(0, 0), Point::new(10, 20));
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 20);
        assert_eq!(r.area(), 200);
        assert_eq!(r.center(), Point::new(5, 10));
        assert!(r.contains(Point::new(0, 0)));
        assert!(!r.contains(Point::new(10, 0)));
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let b = Rect::new(Point::new(5, 5), Point::new(15, 15));
        let c = Rect::new(Point::new(10, 10), Point::new(20, 20));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c)); // touching edges do not overlap
    }

    #[test]
    fn clamp_into_rect() {
        let r = Rect::new(Point::new(0, 0), Point::new(10, 10));
        assert_eq!(r.clamp(Point::new(-5, 50)), Point::new(0, 9));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_rect_panics() {
        let _ = Rect::new(Point::new(5, 5), Point::new(0, 0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Manhattan distance is a metric: symmetric, zero iff equal, and
        /// satisfies the triangle inequality.
        #[test]
        fn manhattan_is_a_metric(
            ax in -1_000_000i64..1_000_000, ay in -1_000_000i64..1_000_000,
            bx in -1_000_000i64..1_000_000, by in -1_000_000i64..1_000_000,
            cx in -1_000_000i64..1_000_000, cy in -1_000_000i64..1_000_000,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert_eq!(a.manhattan(b), b.manhattan(a));
            prop_assert_eq!(a.manhattan(a), 0);
            prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
        }

        /// Clamp always lands inside the rectangle.
        #[test]
        fn clamp_stays_inside(
            px in -2_000_000i64..2_000_000, py in -2_000_000i64..2_000_000,
            w in 1i64..1_000_000, h in 1i64..1_000_000,
        ) {
            let r = Rect::new(Point::new(0, 0), Point::new(w, h));
            let q = r.clamp(Point::new(px, py));
            prop_assert!(r.contains(q));
        }
    }
}
