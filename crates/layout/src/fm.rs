//! The Fiduccia–Mattheyses refinement kernel of recursive bisection.
//!
//! Extracted from `bisect.rs` so the hot loop runs on region-local flat
//! arrays only — no netlist, connectivity-index, or net-slot lookups
//! inside the kernel:
//!
//! * per-cell state is packed into 8 bytes ([`FmCell`]: width, gain,
//!   side/lock flags), halving the memory traffic of the selection scan
//!   and the delta-gain updates;
//! * the gain buckets are singly-linked stacks packed into one flat node
//!   arena with a free list ([`FmScratch`]), plus a high-watermark that
//!   skips empty top buckets; the arena and every other buffer is pooled
//!   across regions and passes (the PR 3 scratch discipline);
//! * both adjacency directions are CSR arrays built by the caller:
//!   net-slot → member cells *and* cell → net slots, so delta updates
//!   walk two flat arrays instead of chasing `ConnectivityIndex` rows
//!   through a global net-slot table.
//!
//! **Exactness.** The selection structure replicates the operational
//! semantics of the original `Vec<Vec<u32>>` gain buckets bit for bit:
//! pushes prepend (the Vec pushed at the top and scanned top-down),
//! scans walk top-down, and lazy deletion of stale/locked entries moves
//! the *top* node into the vacated position (exactly `swap_remove`, which
//! permutes the order future scans see) while unlocked stale entries are
//! re-pushed to the top of their true bucket. Because bucket order
//! determines which cell wins a gain tie, these details are load-bearing;
//! [`refine_reference`] retains the original implementation and the
//! debug-build shadow in `bisect.rs` plus the `differential` tests pin
//! move sequences, cut deltas, and final sides against it.

use sm_exec::CancelToken;

const NIL: u32 = u32::MAX;

/// Packed per-cell FM state: cell width (region widths are far below
/// `u32::MAX` DBU), current gain, and side/lock flags in one 8-byte
/// record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct FmCell {
    pub width: u32,
    pub gain: i16,
    flags: u8,
}

impl FmCell {
    pub fn new(width: u32, high_side: bool) -> FmCell {
        FmCell {
            width,
            gain: 0,
            flags: u8::from(high_side),
        }
    }

    /// Current side as an index (0 = low, 1 = high).
    #[inline]
    pub fn side(self) -> usize {
        (self.flags & 1) as usize
    }

    #[inline]
    pub fn is_high(self) -> bool {
        self.flags & 1 != 0
    }

    #[inline]
    pub fn locked(self) -> bool {
        self.flags & 2 != 0
    }

    #[inline]
    fn flip_side(&mut self) {
        self.flags ^= 1;
    }

    #[inline]
    fn lock(&mut self) {
        self.flags |= 2;
    }

    #[inline]
    fn unlock(&mut self) {
        self.flags &= !2;
    }
}

/// One region's refinement problem: both adjacency directions as CSR
/// over region-local indices (cells `0..ncells` in keyed order, net
/// slots `0..nslots`), the fixed external pin counts per slot and side,
/// and the balance corridor.
pub(crate) struct FmProblem<'a> {
    /// Net slot → member cells (CSR offsets + flat array).
    pub member_off: &'a [u32],
    pub member_flat: &'a [u32],
    /// Cell → its net slots, in `ConnectivityIndex::cell_nets` order
    /// (CSR offsets + flat array).
    pub cell_off: &'a [u32],
    pub cell_slots: &'a [u32],
    /// External pins (ports, out-of-region cells) per slot and side.
    pub fixed: &'a [[u32; 2]],
    /// Balance corridor: `|low_width − target_low| ≤ balance_slack`.
    pub target_low: i64,
    pub balance_slack: i64,
    /// Gain bucket of gain `g` is `(g + offset)`; `nbuckets = 2·offset+1`.
    pub offset: i32,
}

impl FmProblem<'_> {
    #[inline]
    fn members(&self, slot: usize) -> &[u32] {
        &self.member_flat[self.member_off[slot] as usize..self.member_off[slot + 1] as usize]
    }

    #[inline]
    fn slots_of(&self, cell: usize) -> &[u32] {
        &self.cell_slots[self.cell_off[cell] as usize..self.cell_off[cell + 1] as usize]
    }

    fn nbuckets(&self) -> usize {
        (2 * self.offset + 1) as usize
    }
}

/// Pooled refinement scratch: per-net side counts, the move log, and the
/// gain-bucket node arena (`cell`/`next` pairs + per-bucket heads + free
/// list + high watermark). One instance serves every region of a
/// placement without reallocating.
#[derive(Default)]
pub(crate) struct FmScratch {
    count: Vec<[u32; 2]>,
    moves: Vec<u32>,
    head: Vec<u32>,
    node_cell: Vec<u32>,
    node_next: Vec<u32>,
    free: u32,
    hi: usize,
}

impl FmScratch {
    fn reset_buckets(&mut self, nbuckets: usize) {
        if self.head.len() < nbuckets {
            self.head.resize(nbuckets, NIL);
        }
        for h in &mut self.head[..nbuckets] {
            *h = NIL;
        }
        self.node_cell.clear();
        self.node_next.clear();
        self.free = NIL;
        self.hi = 0;
    }

    /// Pushes `cell` on top of bucket `b` (the Vec semantics: newest
    /// entry is probed first).
    #[inline]
    fn push(&mut self, b: usize, cell: u32) {
        let node = if self.free != NIL {
            let n = self.free;
            self.free = self.node_next[n as usize];
            self.node_cell[n as usize] = cell;
            n
        } else {
            self.node_cell.push(cell);
            self.node_next.push(NIL);
            (self.node_cell.len() - 1) as u32
        };
        self.node_next[node as usize] = self.head[b];
        self.head[b] = node;
        if b > self.hi {
            self.hi = b;
        }
    }

    /// Removes the node `cur` (whose predecessor in bucket `b` is
    /// `prev`, `NIL` when `cur` is the top) and moves the bucket's top
    /// node into the vacated position — exactly `Vec::swap_remove` on
    /// the top-down scan order. Returns the node after `cur`, which is
    /// where a scan continues (the moved top is skipped, as the original
    /// scan skipped the element swapped into the probed index). `prev`
    /// is updated to the node now preceding the returned position.
    #[inline]
    fn swap_remove(&mut self, b: usize, prev: &mut u32, cur: u32) -> u32 {
        let nxt = self.node_next[cur as usize];
        let top = self.head[b];
        if cur == top {
            self.head[b] = nxt;
        } else if *prev == top {
            // The top is already `cur`'s predecessor: moving it into
            // `cur`'s slot leaves the order unchanged minus `cur`.
            self.node_next[*prev as usize] = nxt;
        } else {
            self.head[b] = self.node_next[top as usize];
            self.node_next[*prev as usize] = top;
            self.node_next[top as usize] = nxt;
            *prev = top;
        }
        self.node_next[cur as usize] = self.free;
        self.free = cur;
        nxt
    }
}

/// Per-pass record for the differential harness: the full move sequence
/// (region-local cell indices, pre-rollback), the best-prefix length the
/// pass kept, and its cut improvement.
#[derive(Debug, PartialEq, Eq, Default, Clone)]
pub(crate) struct FmTrace {
    pub passes: Vec<(Vec<u32>, usize, i32)>,
}

/// Runs up to three FM passes with best-prefix rollback over `state`,
/// returning the refined low-side width — or `None` if `cancel` fired at
/// a pass boundary (a result-neutral checkpoint: the caller abandons the
/// whole placement, so no partially-refined state ever escapes).
pub(crate) fn refine(
    p: &FmProblem<'_>,
    state: &mut [FmCell],
    scratch: &mut FmScratch,
    mut low_width: i64,
    cancel: &CancelToken,
    mut trace: Option<&mut FmTrace>,
) -> Option<i64> {
    let offset = p.offset;
    let nbuckets = p.nbuckets();
    // Pin counts per net per side for the current partition. The move
    // loop keeps them current and the rollback adjusts them, so only
    // entry scans the member lists.
    let count = std::mem::take(&mut scratch.count);
    let mut count = count;
    count.clear();
    count.extend_from_slice(p.fixed);
    for (slot, c) in count.iter_mut().enumerate() {
        for &i in p.members(slot) {
            c[state[i as usize].side()] += 1;
        }
    }
    for _pass in 0..3 {
        // A deadline between passes abandons the placement wholesale —
        // never a half-refined partition.
        if cancel.is_cancelled() {
            scratch.count = count;
            return None;
        }
        // Initial gains (locks cleared with them).
        for (i, s) in state.iter_mut().enumerate() {
            s.unlock();
            let from = s.side();
            let to = 1 - from;
            let mut g = 0i16;
            for &slot in &p.cell_slots[p.cell_off[i] as usize..p.cell_off[i + 1] as usize] {
                let c = count[slot as usize];
                if c[from] == 1 {
                    g += 1;
                }
                if c[to] == 0 {
                    g -= 1;
                }
            }
            s.gain = g;
        }
        // Gain buckets, bottom cell pushed first (Vec push order).
        scratch.reset_buckets(nbuckets);
        for (i, s) in state.iter().enumerate() {
            scratch.push((s.gain as i32 + offset) as usize, i as u32);
        }
        let mut cur_low = low_width;
        let mut best_delta = 0i32;
        let mut cum_delta = 0i32;
        scratch.moves.clear();
        let mut best_prefix = 0usize;
        loop {
            // Highest-gain movable cell honoring balance: scan buckets
            // top-down from the high watermark (buckets above it are
            // empty — skipping them probes nothing), each bucket
            // top-down, lazily repairing stale and locked entries.
            while scratch.hi > 0 && scratch.head[scratch.hi] == NIL {
                scratch.hi -= 1;
            }
            let mut chosen = None;
            'find: for b in (0..=scratch.hi).rev() {
                let mut prev = NIL;
                let mut cur = scratch.head[b];
                while cur != NIL {
                    let i = scratch.node_cell[cur as usize] as usize;
                    let s = state[i];
                    let true_bucket = (s.gain as i32 + offset) as usize;
                    if s.locked() || true_bucket != b {
                        cur = scratch.swap_remove(b, &mut prev, cur);
                        if !s.locked() {
                            // Stale: surface at the top of its true
                            // bucket (always ≠ b, so this scan is not
                            // perturbed).
                            scratch.push(true_bucket, i as u32);
                        }
                        continue;
                    }
                    let new_low = if s.is_high() {
                        cur_low + s.width as i64
                    } else {
                        cur_low - s.width as i64
                    };
                    if (new_low - p.target_low).abs() <= p.balance_slack {
                        chosen = Some((b, prev, cur, i));
                        break 'find;
                    }
                    prev = cur;
                    cur = scratch.node_next[cur as usize];
                }
            }
            let Some((b, mut prev, cur, i)) = chosen else {
                break;
            };
            scratch.swap_remove(b, &mut prev, cur);
            state[i].lock();
            let w = state[i].width as i64;
            let from = state[i].side();
            let to = 1 - from;
            cum_delta += state[i].gain as i32;
            // FM delta updates on all nets of the moving cell.
            for si in p.cell_off[i] as usize..p.cell_off[i + 1] as usize {
                let slot = p.cell_slots[si] as usize;
                let (mo, mhi) = (p.member_off[slot] as usize, p.member_off[slot + 1] as usize);
                if count[slot][to] == 0 {
                    for di in mo..mhi {
                        let d = p.member_flat[di] as usize;
                        let sd = &mut state[d];
                        if !sd.locked() {
                            sd.gain += 1;
                            scratch.push((sd.gain as i32 + offset) as usize, d as u32);
                        }
                    }
                } else if count[slot][to] == 1 {
                    for di in mo..mhi {
                        let d = p.member_flat[di] as usize;
                        let sd = &mut state[d];
                        if !sd.locked() && sd.side() == to {
                            sd.gain -= 1;
                            scratch.push((sd.gain as i32 + offset) as usize, d as u32);
                        }
                    }
                }
                count[slot][from] -= 1;
                count[slot][to] += 1;
                if count[slot][from] == 0 {
                    for di in mo..mhi {
                        let d = p.member_flat[di] as usize;
                        let sd = &mut state[d];
                        if !sd.locked() {
                            sd.gain -= 1;
                            scratch.push((sd.gain as i32 + offset) as usize, d as u32);
                        }
                    }
                } else if count[slot][from] == 1 {
                    for di in mo..mhi {
                        let d = p.member_flat[di] as usize;
                        let sd = &mut state[d];
                        if !sd.locked() && sd.side() == from {
                            sd.gain += 1;
                            scratch.push((sd.gain as i32 + offset) as usize, d as u32);
                        }
                    }
                }
            }
            state[i].flip_side();
            cur_low = if to == 0 { cur_low + w } else { cur_low - w };
            scratch.moves.push(i as u32);
            if cum_delta > best_delta {
                best_delta = cum_delta;
                best_prefix = scratch.moves.len();
            }
        }
        // Roll back everything after the best prefix, keeping the
        // per-net side counts in sync (the next pass reuses them).
        for &i in &scratch.moves[best_prefix..] {
            let i = i as usize;
            let s = &mut state[i];
            if s.is_high() {
                cur_low += s.width as i64;
            } else {
                cur_low -= s.width as i64;
            }
            s.flip_side();
            let undone = 1 - state[i].side();
            let redone = state[i].side();
            for &slot in p.slots_of(i) {
                let slot = slot as usize;
                count[slot][undone] -= 1;
                count[slot][redone] += 1;
            }
        }
        low_width = cur_low;
        if let Some(t) = trace.as_deref_mut() {
            t.passes
                .push((scratch.moves.clone(), best_prefix, best_delta));
        }
        if best_delta == 0 {
            break;
        }
    }
    scratch.count = count;
    Some(low_width)
}

/// The original `Vec<Vec<u32>>` gain-bucket refinement, retained
/// verbatim as the differential reference for [`refine`] (do not
/// "improve" it — its purpose is to stay faithful to the pre-rework
/// algorithm). Kept out of release binaries; the debug-build shadow in
/// `bisect.rs` and the `differential` tests run it against the arena
/// kernel on every region.
#[cfg(any(test, debug_assertions))]
pub(crate) fn refine_reference(
    p: &FmProblem<'_>,
    state: &mut [FmCell],
    mut low_width: i64,
    cancel: &CancelToken,
    mut trace: Option<&mut FmTrace>,
) -> Option<i64> {
    let offset = p.offset;
    let nbuckets = p.nbuckets();
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); nbuckets];
    let mut count: Vec<[u32; 2]> = Vec::new();
    let mut moves: Vec<u32> = Vec::new();
    count.extend_from_slice(p.fixed);
    for (slot, c) in count.iter_mut().enumerate() {
        for &i in p.members(slot) {
            c[state[i as usize].side()] += 1;
        }
    }
    for _pass in 0..3 {
        if cancel.is_cancelled() {
            return None;
        }
        for (i, s) in state.iter_mut().enumerate() {
            s.unlock();
            let from = s.side();
            let to = 1 - from;
            let mut g = 0i16;
            for &slot in &p.cell_slots[p.cell_off[i] as usize..p.cell_off[i + 1] as usize] {
                let c = count[slot as usize];
                if c[from] == 1 {
                    g += 1;
                }
                if c[to] == 0 {
                    g -= 1;
                }
            }
            s.gain = g;
        }
        for b in buckets.iter_mut() {
            b.clear();
        }
        for (i, s) in state.iter().enumerate() {
            buckets[(s.gain as i32 + offset) as usize].push(i as u32);
        }
        let mut cur_low = low_width;
        let mut best_delta = 0i32;
        let mut cum_delta = 0i32;
        moves.clear();
        let mut best_prefix = 0usize;
        loop {
            let mut chosen = None;
            'find: for b in (0..nbuckets).rev() {
                let mut k = buckets[b].len();
                while k > 0 {
                    k -= 1;
                    let i = buckets[b][k] as usize;
                    let s = state[i];
                    if s.locked() || (s.gain as i32 + offset) as usize != b {
                        buckets[b].swap_remove(k);
                        if !s.locked() {
                            buckets[(s.gain as i32 + offset) as usize].push(i as u32);
                        }
                        continue;
                    }
                    let new_low = if s.is_high() {
                        cur_low + s.width as i64
                    } else {
                        cur_low - s.width as i64
                    };
                    if (new_low - p.target_low).abs() <= p.balance_slack {
                        chosen = Some((b, k, i));
                        break 'find;
                    }
                }
            }
            let Some((b, k, i)) = chosen else { break };
            buckets[b].swap_remove(k);
            state[i].lock();
            let w = state[i].width as i64;
            let from = state[i].side();
            let to = 1 - from;
            cum_delta += state[i].gain as i32;
            for &slot in p.slots_of(i) {
                let slot = slot as usize;
                if count[slot][to] == 0 {
                    for &d in p.members(slot) {
                        let d = d as usize;
                        if !state[d].locked() {
                            state[d].gain += 1;
                            buckets[(state[d].gain as i32 + offset) as usize].push(d as u32);
                        }
                    }
                } else if count[slot][to] == 1 {
                    for &d in p.members(slot) {
                        let d = d as usize;
                        if !state[d].locked() && state[d].side() == to {
                            state[d].gain -= 1;
                            buckets[(state[d].gain as i32 + offset) as usize].push(d as u32);
                        }
                    }
                }
                count[slot][from] -= 1;
                count[slot][to] += 1;
                if count[slot][from] == 0 {
                    for &d in p.members(slot) {
                        let d = d as usize;
                        if !state[d].locked() {
                            state[d].gain -= 1;
                            buckets[(state[d].gain as i32 + offset) as usize].push(d as u32);
                        }
                    }
                } else if count[slot][from] == 1 {
                    for &d in p.members(slot) {
                        let d = d as usize;
                        if !state[d].locked() && state[d].side() == from {
                            state[d].gain += 1;
                            buckets[(state[d].gain as i32 + offset) as usize].push(d as u32);
                        }
                    }
                }
            }
            state[i].flip_side();
            cur_low = if to == 0 { cur_low + w } else { cur_low - w };
            moves.push(i as u32);
            if cum_delta > best_delta {
                best_delta = cum_delta;
                best_prefix = moves.len();
            }
        }
        for &i in &moves[best_prefix..] {
            let i = i as usize;
            let s = &mut state[i];
            if s.is_high() {
                cur_low += s.width as i64;
            } else {
                cur_low -= s.width as i64;
            }
            s.flip_side();
            let undone = 1 - state[i].side();
            let redone = state[i].side();
            for &slot in p.slots_of(i) {
                let slot = slot as usize;
                count[slot][undone] -= 1;
                count[slot][redone] += 1;
            }
        }
        low_width = cur_low;
        if let Some(t) = trace.as_deref_mut() {
            t.passes.push((moves.clone(), best_prefix, best_delta));
        }
        if best_delta == 0 {
            break;
        }
    }
    Some(low_width)
}

#[cfg(test)]
mod differential {
    use super::*;
    use proptest::prelude::*;

    /// A self-contained region problem: coherent cell→slot and
    /// slot→member CSR plus widths, sides, fixed pins and the balance
    /// corridor, generated the same way `bisect.rs` builds them (member
    /// lists in ascending cell order because cells are visited in keyed
    /// order).
    #[derive(Debug, Clone)]
    struct Region {
        cell_adj: Vec<Vec<u32>>,
        nslots: usize,
        widths: Vec<u32>,
        sides: Vec<bool>,
        fixed: Vec<[u32; 2]>,
    }

    impl Region {
        fn csr(&self) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
            let mut cell_off = vec![0u32];
            let mut cell_slots = Vec::new();
            for adj in &self.cell_adj {
                cell_slots.extend_from_slice(adj);
                cell_off.push(cell_slots.len() as u32);
            }
            let mut counts = vec![0u32; self.nslots];
            for &s in &cell_slots {
                counts[s as usize] += 1;
            }
            let mut member_off = vec![0u32];
            for slot in 0..self.nslots {
                member_off.push(member_off[slot] + counts[slot]);
            }
            let mut cursor = member_off.clone();
            let mut member_flat = vec![0u32; *member_off.last().unwrap() as usize];
            for (i, adj) in self.cell_adj.iter().enumerate() {
                for &s in adj {
                    member_flat[cursor[s as usize] as usize] = i as u32;
                    cursor[s as usize] += 1;
                }
            }
            (member_off, member_flat, cell_off, cell_slots)
        }

        fn run_both(
            &self,
        ) -> (
            Option<i64>,
            Option<i64>,
            FmTrace,
            FmTrace,
            Vec<FmCell>,
            Vec<FmCell>,
        ) {
            let (member_off, member_flat, cell_off, cell_slots) = self.csr();
            let total: i64 = self.widths.iter().map(|&w| w as i64).sum();
            let offset = self
                .cell_adj
                .iter()
                .map(|a| a.len())
                .max()
                .unwrap_or(1)
                .max(1) as i32;
            let p = FmProblem {
                member_off: &member_off,
                member_flat: &member_flat,
                cell_off: &cell_off,
                cell_slots: &cell_slots,
                fixed: &self.fixed,
                target_low: total / 2,
                balance_slack: total / 10 + 1,
                offset,
            };
            let init: Vec<FmCell> = self
                .widths
                .iter()
                .zip(&self.sides)
                .map(|(&w, &s)| FmCell::new(w, s))
                .collect();
            let low0: i64 = init
                .iter()
                .filter(|s| !s.is_high())
                .map(|s| s.width as i64)
                .sum();
            let never = CancelToken::new();
            let mut prod_state = init.clone();
            let mut prod_trace = FmTrace::default();
            let mut scratch = FmScratch::default();
            let prod = refine(
                &p,
                &mut prod_state,
                &mut scratch,
                low0,
                &never,
                Some(&mut prod_trace),
            );
            let mut ref_state = init;
            let mut ref_trace = FmTrace::default();
            let reference =
                refine_reference(&p, &mut ref_state, low0, &never, Some(&mut ref_trace));
            (
                prod, reference, prod_trace, ref_trace, prod_state, ref_state,
            )
        }
    }

    fn region_strategy() -> impl Strategy<Value = Region> {
        // The offline proptest shim has no flat_map, so sizes are drawn
        // alongside max-size pools and applied by truncation/modulo.
        (
            (2usize..28, 1usize..20),
            proptest::collection::vec(proptest::collection::vec(0u32..1_000_000, 1..5), 28..29),
            proptest::collection::vec(1u32..400, 28..29),
            proptest::collection::vec(any::<bool>(), 28..29),
            proptest::collection::vec((0u32..3, 0u32..3), 20..21),
        )
            .prop_map(|((ncells, nslots), adj, widths, sides, fixed)| {
                let cell_adj = adj[..ncells]
                    .iter()
                    .map(|raw| {
                        let mut v: Vec<u32> = raw.iter().map(|r| r % nslots as u32).collect();
                        v.sort_unstable();
                        v.dedup();
                        v
                    })
                    .collect();
                Region {
                    cell_adj,
                    nslots,
                    widths: widths[..ncells].to_vec(),
                    sides: sides[..ncells].to_vec(),
                    fixed: fixed[..nslots].iter().map(|&(a, b)| [a, b]).collect(),
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The arena kernel and the retained reference agree on random
        /// region problems: identical per-pass move sequences, best
        /// prefixes, cut deltas, final sides and low widths.
        #[test]
        fn arena_kernel_matches_reference(region in region_strategy()) {
            let (prod, reference, prod_trace, ref_trace, prod_state, ref_state) =
                region.run_both();
            prop_assert_eq!(prod, reference);
            prop_assert_eq!(prod_trace, ref_trace);
            prop_assert_eq!(prod_state, ref_state);
        }
    }

    /// A dense hand-built region exercising many stale-entry repairs:
    /// two cliques joined by bridge nets, every cell in several nets.
    #[test]
    fn clique_bridge_matches_reference() {
        let mut cell_adj = Vec::new();
        for i in 0..12u32 {
            let side = i / 6;
            // Nets 0..3 are clique nets of side 0, 4..7 of side 1, 8 is
            // the bridge everyone shares.
            let mut adj = vec![side * 4 + (i % 3), side * 4 + ((i + 1) % 3), 8];
            adj.sort_unstable();
            adj.dedup();
            cell_adj.push(adj);
        }
        let region = Region {
            cell_adj,
            nslots: 9,
            widths: (0..12).map(|i| 100 + (i % 5) * 37).collect(),
            sides: (0..12).map(|i| i % 2 == 0).collect(),
            fixed: vec![[1, 0]; 9],
        };
        let (prod, reference, prod_trace, ref_trace, prod_state, ref_state) = region.run_both();
        assert_eq!(prod, reference);
        assert!(
            prod_trace.passes.iter().any(|(m, _, _)| !m.is_empty()),
            "test region should actually move cells"
        );
        assert_eq!(prod_trace, ref_trace);
        assert_eq!(prod_state, ref_state);
    }

    /// A pre-cancelled token aborts before the first pass and leaves no
    /// trace; refinement never returns a partial result.
    #[test]
    fn cancellation_aborts_between_passes() {
        let region = Region {
            cell_adj: vec![vec![0], vec![0], vec![0], vec![0]],
            nslots: 1,
            widths: vec![100; 4],
            sides: vec![false, true, false, true],
            fixed: vec![[0, 0]],
        };
        let (member_off, member_flat, cell_off, cell_slots) = region.csr();
        let p = FmProblem {
            member_off: &member_off,
            member_flat: &member_flat,
            cell_off: &cell_off,
            cell_slots: &cell_slots,
            fixed: &region.fixed,
            target_low: 200,
            balance_slack: 41,
            offset: 1,
        };
        let mut state: Vec<FmCell> = region
            .widths
            .iter()
            .zip(&region.sides)
            .map(|(&w, &s)| FmCell::new(w, s))
            .collect();
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let mut trace = FmTrace::default();
        let mut scratch = FmScratch::default();
        let out = refine(
            &p,
            &mut state,
            &mut scratch,
            200,
            &cancelled,
            Some(&mut trace),
        );
        assert_eq!(out, None);
        assert!(trace.passes.is_empty());
    }
}
