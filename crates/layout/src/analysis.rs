//! Layout analyses backing the paper's tables and figures: driver–sink
//! distance statistics (Table 1, Fig. 4) and per-layer wirelength shares
//! (Fig. 5).

use crate::place::Placement;
use crate::route::RoutingResult;
use sm_netlist::{NetId, Netlist};

/// Summary statistics of a distance sample, in microns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Number of driver→sink pairs sampled.
    pub samples: usize,
}

/// Manhattan distances (µm) between the driver and every sink of each net
/// in `nets`, measured on `placement`. This is the quantity Table 1
/// reports: randomization inflates it by an order of magnitude.
pub fn driver_sink_distances_um(
    netlist: &Netlist,
    placement: &Placement,
    nets: impl IntoIterator<Item = NetId>,
) -> Vec<f64> {
    let mut out = Vec::new();
    for net in nets {
        let d = placement.driver_position(netlist, net);
        for s in placement.sink_positions(netlist, net) {
            out.push(d.manhattan_um(s));
        }
    }
    out
}

/// Distances between *logically* connected endpoints when the logical
/// connectivity differs from the placed netlist (the "proposed" rows of
/// Table 1): for each `(driver_net, sink_position_source_net)` pair the
/// caller supplies, measures driver of the first against sinks of the
/// second.
pub fn cross_net_distances_um(
    netlist: &Netlist,
    placement: &Placement,
    pairs: impl IntoIterator<Item = (NetId, NetId)>,
) -> Vec<f64> {
    let mut out = Vec::new();
    for (driver_net, sink_net) in pairs {
        let d = placement.driver_position(netlist, driver_net);
        for s in placement.sink_positions(netlist, sink_net) {
            out.push(d.manhattan_um(s));
        }
    }
    out
}

/// Computes [`DistanceStats`] over a sample.
///
/// Returns zeros for an empty sample.
pub fn distance_stats(mut sample: Vec<f64>) -> DistanceStats {
    let n = sample.len();
    if n == 0 {
        return DistanceStats {
            mean: 0.0,
            median: 0.0,
            std_dev: 0.0,
            samples: 0,
        };
    }
    sample.sort_by(f64::total_cmp);
    let mean = sample.iter().sum::<f64>() / n as f64;
    let median = if n % 2 == 1 {
        sample[n / 2]
    } else {
        (sample[n / 2 - 1] + sample[n / 2]) / 2.0
    };
    let var = sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    DistanceStats {
        mean,
        median,
        std_dev: var.sqrt(),
        samples: n,
    }
}

/// Per-layer share (%) of total routed wirelength — the series Fig. 5
/// plots. Index 0 = M1.
pub fn wirelength_share_by_layer(routes: &RoutingResult) -> [f64; 10] {
    let total = routes.total_wirelength_dbu().max(1) as f64;
    let mut out = [0.0; 10];
    for (i, &w) in routes.wirelength_per_layer_dbu().iter().enumerate() {
        out[i] = w as f64 / total * 100.0;
    }
    out
}

/// Per-layer share (%) restricted to a subset of nets (Fig. 5 plots the
/// randomized nets only).
pub fn wirelength_share_by_layer_for(
    routes: &RoutingResult,
    nets: impl IntoIterator<Item = NetId>,
) -> [f64; 10] {
    let mut per_layer = [0i64; 10];
    for net in nets {
        for s in &routes.route(net).segments {
            let len = (s.a.0 as i64 - s.b.0 as i64).abs() + (s.a.1 as i64 - s.b.1 as i64).abs();
            per_layer[(s.layer - 1) as usize] += len * routes.tile_dbu();
        }
    }
    let total: i64 = per_layer.iter().sum();
    let total = total.max(1) as f64;
    let mut out = [0.0; 10];
    for i in 0..10 {
        out[i] = per_layer[i] as f64 / total * 100.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::PlacementEngine;
    use crate::route::{RouteOptions, Router};
    use crate::tech::Technology;
    use crate::Floorplan;
    use sm_netlist::parse::bench::{parse_bench, C17_BENCH};
    use sm_netlist::Library;

    #[test]
    fn distance_stats_basics() {
        let s = distance_stats(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.samples, 4);
        let empty = distance_stats(vec![]);
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn odd_sample_median() {
        let s = distance_stats(vec![5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn c17_distances_and_shares() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(7).place(&n, &fp);
        let r = Router::new(&tech).route(&n, &pl, &fp, &RouteOptions::default());
        let nets: Vec<_> = n
            .nets()
            .filter(|(_, net)| net.degree() >= 2)
            .map(|(id, _)| id)
            .collect();
        let d = driver_sink_distances_um(&n, &pl, nets.iter().copied());
        assert!(!d.is_empty());
        assert!(d.iter().all(|&x| x >= 0.0));
        let shares = wirelength_share_by_layer(&r);
        let total: f64 = shares.iter().sum();
        assert!(total > 99.0 && total < 101.0, "total {total}");
        let sub = wirelength_share_by_layer_for(&r, nets);
        let sub_total: f64 = sub.iter().sum();
        assert!(sub_total > 99.0 && sub_total < 101.0, "sub {sub_total}");
    }

    #[test]
    fn cross_net_distances_cover_sink_counts() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(7).place(&n, &fp);
        let nets: Vec<_> = n.nets().map(|(id, _)| id).collect();
        let d = cross_net_distances_um(&n, &pl, vec![(nets[0], nets[1])]);
        assert_eq!(d.len(), n.net(nets[1]).sinks().len());
    }
}
