//! Minimal DEF-like interchange: component placements and net pins.
//!
//! The paper's artifact ships DEF splitting/conversion scripts; this module
//! provides the equivalent exchange point — enough to dump a placed design
//! to text and read it back, e.g. to hand a layout to an out-of-process
//! attack.

use crate::geom::Point;
use crate::place::Placement;
use sm_netlist::{CellId, Netlist, NetlistError};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes cell placements in a DEF-flavored `COMPONENTS` section.
pub fn write_def(netlist: &Netlist, placement: &Placement) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "DESIGN {} ;", netlist.name());
    let _ = writeln!(out, "COMPONENTS {} ;", netlist.num_cells());
    for (id, cell) in netlist.cells() {
        let o = placement.cell_origin(id);
        let lib = netlist.library().cell(cell.lib);
        let _ = writeln!(
            out,
            "- {} {} + PLACED ( {} {} ) N ;",
            cell.name, lib.name, o.x, o.y
        );
    }
    let _ = writeln!(out, "END COMPONENTS");
    out
}

/// Parses the output of [`write_def`], returning cell origins keyed by
/// instance name.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed component lines.
pub fn parse_def_placements(text: &str) -> Result<HashMap<String, Point>, NetlistError> {
    let mut out = HashMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with("- ") {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        // - NAME LIB + PLACED ( X Y ) N ;
        let open = toks.iter().position(|&t| t == "(");
        match open {
            Some(i) if toks.len() > i + 2 => {
                let x: i64 = toks[i + 1].parse().map_err(|_| NetlistError::Parse {
                    line: idx + 1,
                    message: format!("bad x coordinate `{}`", toks[i + 1]),
                })?;
                let y: i64 = toks[i + 2].parse().map_err(|_| NetlistError::Parse {
                    line: idx + 1,
                    message: format!("bad y coordinate `{}`", toks[i + 2]),
                })?;
                out.insert(toks[1].to_string(), Point::new(x, y));
            }
            _ => {
                return Err(NetlistError::Parse {
                    line: idx + 1,
                    message: "component line without `( x y )`".into(),
                })
            }
        }
    }
    Ok(out)
}

/// Applies placements parsed from DEF text back onto a [`Placement`]
/// (matching instances by name). Returns how many cells were placed.
pub fn apply_def_placements(
    netlist: &Netlist,
    placement: &mut Placement,
    parsed: &HashMap<String, Point>,
) -> usize {
    let mut applied = 0;
    for (id, cell) in netlist.cells() {
        if let Some(&p) = parsed.get(&cell.name) {
            placement.set_cell_origin(CellId::new(id.index()), p);
            applied += 1;
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::PlacementEngine;
    use crate::tech::Technology;
    use crate::Floorplan;
    use sm_netlist::parse::bench::{parse_bench, C17_BENCH};
    use sm_netlist::Library;

    #[test]
    fn def_roundtrip() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.5);
        let pl = PlacementEngine::new(4).place(&n, &fp);
        let def = write_def(&n, &pl);
        assert!(def.contains("COMPONENTS 6"));
        let parsed = parse_def_placements(&def).unwrap();
        assert_eq!(parsed.len(), 6);
        let mut pl2 = PlacementEngine::new(99).place(&n, &fp);
        let applied = apply_def_placements(&n, &mut pl2, &parsed);
        assert_eq!(applied, 6);
        for (id, _) in n.cells() {
            assert_eq!(pl2.cell_origin(id), pl.cell_origin(id));
        }
    }

    #[test]
    fn malformed_line_is_error() {
        let text = "DESIGN x ;\n- U0 NAND2_X1 + PLACED broken ;\n";
        assert!(parse_def_placements(text).is_err());
    }

    #[test]
    fn bad_coordinate_is_error() {
        let text = "- U0 NAND2_X1 + PLACED ( twelve 7 ) N ;\n";
        assert!(parse_def_placements(text).is_err());
    }
}
