//! Binary [`sm_codec`] implementations for layout types.
//!
//! A persisted bundle carries full physical views — floorplans,
//! placements and routing results — so warm `smctl` runs can skip
//! place-and-route entirely. All encodings are positional (ids index
//! vectors), mirroring the in-memory representation exactly; decoding
//! only validates what cannot be represented (truncation, bad tags) and
//! leaves semantic checks to the store's rebuild-on-error policy.

use sm_codec::{CodecError, Decode, Encode, Reader, Writer};

use crate::floorplan::Floorplan;
use crate::geom::{Point, Rect};
use crate::place::Placement;
use crate::route::{NetRoute, RouteSegment, RoutingResult, TwoPinRoute, ViaCounts, ViaStack};
use crate::split::{FeolView, SplitLayout, Vpin, VpinSide};

impl Encode for Point {
    fn encode(&self, w: &mut Writer) {
        self.x.encode(w);
        self.y.encode(w);
    }
}

impl Decode for Point {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Point::new(i64::decode(r)?, i64::decode(r)?))
    }
}

impl Encode for Rect {
    fn encode(&self, w: &mut Writer) {
        self.lo.encode(w);
        self.hi.encode(w);
    }
}

impl Decode for Rect {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let lo = Point::decode(r)?;
        let hi = Point::decode(r)?;
        if hi.x < lo.x || hi.y < lo.y {
            // `Rect::new` panics on degenerate corners; decode must not.
            return Err(CodecError::Invalid(format!(
                "degenerate rectangle {lo}..{hi}"
            )));
        }
        Ok(Rect::new(lo, hi))
    }
}

impl Encode for Floorplan {
    fn encode(&self, w: &mut Writer) {
        self.core.encode(w);
        self.num_rows.encode(w);
        self.row_height.encode(w);
        self.site_width.encode(w);
        self.sites_per_row.encode(w);
        self.target_utilization.encode(w);
    }
}

impl Decode for Floorplan {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let fp = Floorplan {
            core: Rect::decode(r)?,
            num_rows: usize::decode(r)?,
            row_height: i64::decode(r)?,
            site_width: i64::decode(r)?,
            sites_per_row: usize::decode(r)?,
            target_utilization: f64::decode(r)?,
        };
        if fp.num_rows == 0 || fp.row_height <= 0 {
            // `row_of` divides by row_height and indexes rows.
            return Err(CodecError::Invalid("floorplan with no rows".into()));
        }
        Ok(fp)
    }
}

impl Encode for Placement {
    fn encode(&self, w: &mut Writer) {
        self.origins.encode(w);
        self.widths.encode(w);
        self.row_height.encode(w);
        self.inputs.encode(w);
        self.outputs.encode(w);
    }
}

impl Decode for Placement {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let p = Placement {
            origins: Vec::decode(r)?,
            widths: Vec::decode(r)?,
            row_height: i64::decode(r)?,
            inputs: Vec::decode(r)?,
            outputs: Vec::decode(r)?,
        };
        if p.origins.len() != p.widths.len() {
            return Err(CodecError::Invalid(format!(
                "placement with {} origins but {} widths",
                p.origins.len(),
                p.widths.len()
            )));
        }
        Ok(p)
    }
}

impl Encode for ViaCounts {
    fn encode(&self, w: &mut Writer) {
        self.counts.encode(w);
    }
}

impl Decode for ViaCounts {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ViaCounts {
            counts: <[u64; 9]>::decode(r)?,
        })
    }
}

impl Encode for RouteSegment {
    fn encode(&self, w: &mut Writer) {
        self.layer.encode(w);
        self.a.encode(w);
        self.b.encode(w);
    }
}

impl Decode for RouteSegment {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RouteSegment {
            layer: u8::decode(r)?,
            a: <(u16, u16)>::decode(r)?,
            b: <(u16, u16)>::decode(r)?,
        })
    }
}

impl Encode for ViaStack {
    fn encode(&self, w: &mut Writer) {
        self.at.encode(w);
        self.from_layer.encode(w);
        self.to_layer.encode(w);
    }
}

impl Decode for ViaStack {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ViaStack {
            at: <(u16, u16)>::decode(r)?,
            from_layer: u8::decode(r)?,
            to_layer: u8::decode(r)?,
        })
    }
}

impl Encode for TwoPinRoute {
    fn encode(&self, w: &mut Writer) {
        self.a_pin.encode(w);
        self.b_pin.encode(w);
        self.a.encode(w);
        self.b.encode(w);
        self.corner.encode(w);
        self.first_layer.encode(w);
        self.second_layer.encode(w);
    }
}

impl Decode for TwoPinRoute {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TwoPinRoute {
            a_pin: u32::decode(r)?,
            b_pin: u32::decode(r)?,
            a: <(u16, u16)>::decode(r)?,
            b: <(u16, u16)>::decode(r)?,
            corner: <(u16, u16)>::decode(r)?,
            first_layer: u8::decode(r)?,
            second_layer: u8::decode(r)?,
        })
    }
}

impl Encode for NetRoute {
    fn encode(&self, w: &mut Writer) {
        self.segments.encode(w);
        self.vias.encode(w);
        self.twopins.encode(w);
    }
}

impl Decode for NetRoute {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(NetRoute {
            segments: Vec::decode(r)?,
            vias: Vec::decode(r)?,
            twopins: Vec::decode(r)?,
        })
    }
}

impl Encode for RoutingResult {
    fn encode(&self, w: &mut Writer) {
        self.tile_dbu.encode(w);
        self.nx.encode(w);
        self.ny.encode(w);
        self.routes.encode(w);
        self.via_counts.encode(w);
        self.wirelength_per_layer.encode(w);
        self.overflow_edges.encode(w);
    }
}

impl Decode for RoutingResult {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RoutingResult {
            tile_dbu: i64::decode(r)?,
            nx: u16::decode(r)?,
            ny: u16::decode(r)?,
            routes: Vec::decode(r)?,
            via_counts: ViaCounts::decode(r)?,
            wirelength_per_layer: <[i64; 10]>::decode(r)?,
            overflow_edges: usize::decode(r)?,
        })
    }
}

impl Encode for VpinSide {
    fn encode(&self, w: &mut Writer) {
        match self {
            VpinSide::Driver(d) => {
                w.put_u8(0);
                d.encode(w);
            }
            VpinSide::Sink(s) => {
                w.put_u8(1);
                s.encode(w);
            }
        }
    }
}

impl Decode for VpinSide {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.take_u8()? {
            0 => VpinSide::Driver(Decode::decode(r)?),
            1 => VpinSide::Sink(Decode::decode(r)?),
            other => return Err(CodecError::Invalid(format!("VpinSide tag {other}"))),
        })
    }
}

impl Encode for Vpin {
    fn encode(&self, w: &mut Writer) {
        self.position.encode(w);
        self.side.encode(w);
        self.stub_direction.encode(w);
        self.net.encode(w);
    }
}

impl Decode for Vpin {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Vpin {
            position: Point::decode(r)?,
            side: VpinSide::decode(r)?,
            stub_direction: Option::decode(r)?,
            net: Decode::decode(r)?,
        })
    }
}

impl Encode for FeolView {
    fn encode(&self, w: &mut Writer) {
        self.split_layer.encode(w);
        self.visible_nets.encode(w);
        self.vpins.encode(w);
    }
}

impl Decode for FeolView {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(FeolView {
            split_layer: u8::decode(r)?,
            visible_nets: Vec::decode(r)?,
            vpins: Vec::decode(r)?,
        })
    }
}

impl Encode for SplitLayout {
    fn encode(&self, w: &mut Writer) {
        self.feol.encode(w);
        self.cut_nets.encode(w);
    }
}

impl Decode for SplitLayout {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SplitLayout {
            feol: FeolView::decode(r)?,
            cut_nets: usize::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use sm_codec::{decode_from_slice, encode_to_vec};
    use sm_netlist::parse::bench::{parse_bench, C17_BENCH};
    use sm_netlist::{Library, Netlist};

    use crate::tech::Technology;
    use crate::{Floorplan, Placement, PlacementEngine, RouteOptions, Router, RoutingResult};

    fn placed_and_routed() -> (Netlist, Floorplan, Placement, RoutingResult) {
        let n = parse_bench("c17", C17_BENCH, &Library::nangate45()).unwrap();
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&n, &tech, 0.6);
        let pl = PlacementEngine::new(3).place(&n, &fp);
        let rt = Router::new(&tech).route(&n, &pl, &fp, &RouteOptions::default());
        (n, fp, pl, rt)
    }

    #[test]
    fn physical_views_roundtrip() {
        let (n, fp, pl, rt) = placed_and_routed();

        let fp2: Floorplan = decode_from_slice(&encode_to_vec(&fp)).unwrap();
        assert_eq!(fp2, fp);

        let pl2: Placement = decode_from_slice(&encode_to_vec(&pl)).unwrap();
        assert_eq!(pl2, pl);
        assert!(pl2.is_legal(&fp2));

        let rt2: RoutingResult = decode_from_slice(&encode_to_vec(&rt)).unwrap();
        assert_eq!(rt2.via_counts(), rt.via_counts());
        assert_eq!(rt2.total_wirelength_dbu(), rt.total_wirelength_dbu());
        assert_eq!(rt2.grid_dims(), rt.grid_dims());
        assert_eq!(rt2.overflow_edges(), rt.overflow_edges());
        for (id, _) in n.nets() {
            assert_eq!(rt2.route(id).segments, rt.route(id).segments);
            assert_eq!(rt2.route(id).vias, rt.route(id).vias);
            assert_eq!(rt2.route(id).twopins, rt.route(id).twopins);
            assert_eq!(rt2.net_max_layer(id), rt.net_max_layer(id));
        }
    }

    #[test]
    fn split_layouts_roundtrip() {
        use crate::split::{split_layout, SplitLayout};
        let (n, _, pl, rt) = placed_and_routed();
        for layer in [2u8, 3, 4] {
            let s = split_layout(&n, &pl, &rt, layer);
            let s2: SplitLayout = decode_from_slice(&encode_to_vec(&s)).unwrap();
            assert_eq!(s2.cut_nets, s.cut_nets);
            assert_eq!(s2.feol.split_layer, s.feol.split_layer);
            assert_eq!(s2.feol.visible_nets, s.feol.visible_nets);
            assert_eq!(s2.feol.vpins, s.feol.vpins);
        }
        // Corrupt split bytes fail cleanly, like every other payload.
        let s = split_layout(&n, &pl, &rt, 3);
        let bytes = encode_to_vec(&s);
        assert!(decode_from_slice::<SplitLayout>(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn corrupt_layout_bytes_fail_cleanly() {
        let (_, fp, pl, rt) = placed_and_routed();
        for bytes in [encode_to_vec(&fp), encode_to_vec(&pl), encode_to_vec(&rt)] {
            assert!(decode_from_slice::<RoutingResult>(&bytes[..bytes.len() / 3]).is_err());
            // Flipping length-prefix bytes must never panic.
            let mut garbled = bytes.clone();
            for b in garbled.iter_mut().take(24) {
                *b = 0xff;
            }
            let _ = decode_from_slice::<Floorplan>(&garbled);
            let _ = decode_from_slice::<Placement>(&garbled);
            let _ = decode_from_slice::<RoutingResult>(&garbled);
        }
    }

    #[test]
    fn mismatched_placement_vectors_are_rejected() {
        use sm_codec::{Encode, Writer};
        let (_, _, pl, _) = placed_and_routed();
        let mut w = Writer::new();
        pl.origins.encode(&mut w);
        vec![0i64; pl.origins.len() + 1].encode(&mut w);
        pl.row_height.encode(&mut w);
        pl.inputs.encode(&mut w);
        pl.outputs.encode(&mut w);
        assert!(decode_from_slice::<Placement>(&w.into_bytes()).is_err());
    }
}
