//! Binary [`sm_codec`] implementations for netlist types.
//!
//! These power the engine's disk-backed artifact store: a fully-processed
//! layout bundle embeds several [`Netlist`]s, and persisting one must
//! round-trip connectivity exactly (ids are positional, so encoding keeps
//! vector order). Decoding validates enum tags and rebuilds derived state
//! (the library's name index); structural invariants beyond that are the
//! caller's to check — the store treats any [`CodecError`] as a cache
//! miss and rebuilds from scratch.

use std::sync::Arc;

use sm_codec::{CodecError, Decode, Encode, Reader, Writer};

use crate::id::{CellId, LibCellId, NetId, PortId};
use crate::library::{GateFn, LibCell, Library};
use crate::netlist::{Cell, Driver, Net, Netlist, Port, Sink};

macro_rules! impl_id_codec {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                (self.index() as u32).encode(w);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(<$ty>::new(u32::decode(r)? as usize))
            }
        }
    )*};
}

impl_id_codec!(CellId, NetId, PortId, LibCellId);

impl Encode for GateFn {
    fn encode(&self, w: &mut Writer) {
        let tag: u8 = match self {
            GateFn::Buf => 0,
            GateFn::Inv => 1,
            GateFn::And => 2,
            GateFn::Nand => 3,
            GateFn::Or => 4,
            GateFn::Nor => 5,
            GateFn::Xor => 6,
            GateFn::Xnor => 7,
        };
        tag.encode(w);
    }
}

impl Decode for GateFn {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match u8::decode(r)? {
            0 => GateFn::Buf,
            1 => GateFn::Inv,
            2 => GateFn::And,
            3 => GateFn::Nand,
            4 => GateFn::Or,
            5 => GateFn::Nor,
            6 => GateFn::Xor,
            7 => GateFn::Xnor,
            other => return Err(CodecError::Invalid(format!("GateFn tag {other}"))),
        })
    }
}

impl Encode for LibCell {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.function.encode(w);
        self.num_inputs.encode(w);
        self.area_um2.encode(w);
        self.input_cap_ff.encode(w);
        self.drive_res_kohm.encode(w);
        self.intrinsic_delay_ps.encode(w);
        self.leakage_nw.encode(w);
    }
}

impl Decode for LibCell {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(LibCell {
            name: String::decode(r)?,
            function: GateFn::decode(r)?,
            num_inputs: usize::decode(r)?,
            area_um2: f64::decode(r)?,
            input_cap_ff: f64::decode(r)?,
            drive_res_kohm: f64::decode(r)?,
            intrinsic_delay_ps: f64::decode(r)?,
            leakage_nw: f64::decode(r)?,
        })
    }
}

impl Encode for Library {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.cells.encode(w);
    }
}

impl Decode for Library {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let name = String::decode(r)?;
        let cells = Vec::<LibCell>::decode(r)?;
        // Rebuild through the public constructor so the name index stays
        // consistent; duplicate names mean corrupted input ([`Library::
        // add_cell`] would panic, which decode must never do).
        let mut lib = Library::new(name);
        for cell in cells {
            if lib.find(&cell.name).is_some() {
                return Err(CodecError::Invalid(format!(
                    "duplicate library cell `{}`",
                    cell.name
                )));
            }
            lib.add_cell(cell);
        }
        Ok(lib)
    }
}

impl Encode for Driver {
    fn encode(&self, w: &mut Writer) {
        match self {
            Driver::Cell(c) => {
                w.put_u8(0);
                c.encode(w);
            }
            Driver::Port(p) => {
                w.put_u8(1);
                p.encode(w);
            }
        }
    }
}

impl Decode for Driver {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.take_u8()? {
            0 => Driver::Cell(CellId::decode(r)?),
            1 => Driver::Port(PortId::decode(r)?),
            other => return Err(CodecError::Invalid(format!("Driver tag {other}"))),
        })
    }
}

impl Encode for Sink {
    fn encode(&self, w: &mut Writer) {
        match self {
            Sink::Cell { cell, pin } => {
                w.put_u8(0);
                cell.encode(w);
                pin.encode(w);
            }
            Sink::Port(p) => {
                w.put_u8(1);
                p.encode(w);
            }
        }
    }
}

impl Decode for Sink {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.take_u8()? {
            0 => Sink::Cell {
                cell: CellId::decode(r)?,
                pin: u8::decode(r)?,
            },
            1 => Sink::Port(PortId::decode(r)?),
            other => return Err(CodecError::Invalid(format!("Sink tag {other}"))),
        })
    }
}

impl Encode for Port {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.net.encode(w);
    }
}

impl Decode for Port {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Port {
            name: String::decode(r)?,
            net: NetId::decode(r)?,
        })
    }
}

impl Encode for Cell {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.lib.encode(w);
        self.inputs.encode(w);
        self.output.encode(w);
    }
}

impl Decode for Cell {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Cell {
            name: String::decode(r)?,
            lib: LibCellId::decode(r)?,
            inputs: Vec::decode(r)?,
            output: NetId::decode(r)?,
        })
    }
}

impl Encode for Net {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.driver.encode(w);
        self.sinks.encode(w);
    }
}

impl Decode for Net {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Net {
            name: String::decode(r)?,
            driver: Driver::decode(r)?,
            sinks: Vec::decode(r)?,
        })
    }
}

impl Encode for Netlist {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.library.encode(w);
        self.cells.encode(w);
        self.nets.encode(w);
        self.inputs.encode(w);
        self.outputs.encode(w);
    }
}

impl Decode for Netlist {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Netlist::from_parts(
            String::decode(r)?,
            Arc::new(Library::decode(r)?),
            Vec::decode(r)?,
            Vec::decode(r)?,
            Vec::decode(r)?,
            Vec::decode(r)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use sm_codec::{decode_from_slice, encode_to_vec};

    use crate::parse::bench::{parse_bench, C17_BENCH};
    use crate::{Library, Netlist};

    fn c17() -> Netlist {
        parse_bench("c17", C17_BENCH, &Library::nangate45()).unwrap()
    }

    #[test]
    fn netlist_roundtrips_exactly() {
        let n = c17();
        let bytes = encode_to_vec(&n);
        let back: Netlist = decode_from_slice(&bytes).unwrap();
        back.validate().unwrap();
        assert_eq!(back.name(), n.name());
        assert_eq!(back.num_cells(), n.num_cells());
        assert_eq!(back.num_nets(), n.num_nets());
        assert_eq!(back.input_ports(), n.input_ports());
        assert_eq!(back.output_ports(), n.output_ports());
        for (id, cell) in n.cells() {
            assert_eq!(back.cell(id), cell);
        }
        for (id, net) in n.nets() {
            assert_eq!(back.net(id), net);
        }
        assert_eq!(back.library().name(), n.library().name());
        assert_eq!(back.total_cell_area_um2(), n.total_cell_area_um2());
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode_to_vec(&c17()), encode_to_vec(&c17()));
    }

    #[test]
    fn truncated_netlist_fails_cleanly() {
        let bytes = encode_to_vec(&c17());
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_from_slice::<Netlist>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn duplicate_library_cells_are_rejected() {
        use sm_codec::{Encode, Writer};
        let lib = Library::nangate45();
        let mut w = Writer::new();
        // A library whose cell list repeats the first cell.
        lib.name().encode(&mut w);
        let first = lib.iter().next().unwrap().1.clone();
        vec![first.clone(), first].encode(&mut w);
        assert!(decode_from_slice::<Library>(&w.into_bytes()).is_err());
    }
}
