//! Error type shared by the netlist construction and parsing APIs.

use std::error::Error;
use std::fmt;

/// Error raised while building, editing or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was instantiated with an input count the library cannot map to
    /// any cell (for example a zero-input AND).
    BadFanin {
        /// The requested logic function, e.g. `"NAND"`.
        function: String,
        /// The offending number of inputs.
        fanin: usize,
    },
    /// A name was defined twice (two gates or two ports with the same name).
    DuplicateName(String),
    /// A signal name was referenced before/without being defined.
    UnknownSignal(String),
    /// A library cell name was referenced that the library does not contain.
    UnknownLibCell(String),
    /// The netlist contains a combinational cycle; the payload names one cell
    /// on the cycle.
    CombinationalLoop(String),
    /// A net edit referred to a sink that is not connected to the given net.
    SinkNotOnNet {
        /// Human-readable description of the sink.
        sink: String,
        /// Name of the net the sink was expected on.
        net: String,
    },
    /// Parse failure with line number and message.
    Parse {
        /// 1-based line number in the input text.
        line: usize,
        /// Description of the syntax problem.
        message: String,
    },
    /// Two netlists that must agree on their port interface do not.
    PortMismatch(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::BadFanin { function, fanin } => {
                write!(f, "cannot realize {function} gate with {fanin} inputs")
            }
            NetlistError::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
            NetlistError::UnknownSignal(name) => write!(f, "unknown signal `{name}`"),
            NetlistError::UnknownLibCell(name) => write!(f, "unknown library cell `{name}`"),
            NetlistError::CombinationalLoop(name) => {
                write!(f, "combinational loop through cell `{name}`")
            }
            NetlistError::SinkNotOnNet { sink, net } => {
                write!(f, "sink {sink} is not connected to net `{net}`")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::PortMismatch(detail) => write!(f, "port mismatch: {detail}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = NetlistError::BadFanin {
            function: "NAND".into(),
            fanin: 0,
        };
        assert_eq!(e.to_string(), "cannot realize NAND gate with 0 inputs");
        let e = NetlistError::Parse {
            line: 12,
            message: "missing `)`".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
