//! Flat CSR connectivity index: cell → nets and net → cells.
//!
//! Several hot paths — detailed-placement swap evaluation, router net
//! ordering, recursive bisection — need "which nets touch this cell" and
//! "which cells touch this net" queries. Building those as
//! `Vec<Vec<_>>` per call heap-allocates per cell/net and was rebuilt at
//! every use site; this index builds both directions **once** as
//! compressed sparse rows (two flat arrays each) and hands out slices.
//!
//! The contents match what the call sites previously computed inline:
//!
//! * [`cell_nets`](ConnectivityIndex::cell_nets) is the cell's input
//!   nets plus its output net, **sorted and deduplicated** (a cell
//!   feeding itself through multiple pins appears once per distinct
//!   net);
//! * [`net_cells`](ConnectivityIndex::net_cells) is the transpose: every
//!   cell touching the net (as driver or sink), in ascending cell order,
//!   each cell once.
//!
//! The index is a snapshot of the netlist's connectivity; rebuild it
//! after `move_sink` edits.

use crate::id::{CellId, NetId};
use crate::netlist::Netlist;

/// CSR connectivity snapshot of one netlist. Build with
/// [`ConnectivityIndex::build`], query by slice.
#[derive(Debug, Clone)]
pub struct ConnectivityIndex {
    cell_net_offsets: Vec<u32>,
    cell_nets: Vec<NetId>,
    net_cell_offsets: Vec<u32>,
    net_cells: Vec<CellId>,
}

impl ConnectivityIndex {
    /// Builds both CSR directions in two passes over the netlist.
    pub fn build(netlist: &Netlist) -> ConnectivityIndex {
        let num_cells = netlist.num_cells();
        let num_nets = netlist.num_nets();

        // Forward direction: deduped sorted nets per cell.
        let mut cell_net_offsets = Vec::with_capacity(num_cells + 1);
        let mut cell_nets: Vec<NetId> = Vec::new();
        let mut scratch: Vec<NetId> = Vec::new();
        cell_net_offsets.push(0u32);
        for (_, cell) in netlist.cells() {
            scratch.clear();
            scratch.extend_from_slice(cell.inputs());
            scratch.push(cell.output());
            scratch.sort_unstable();
            scratch.dedup();
            cell_nets.extend_from_slice(&scratch);
            cell_net_offsets.push(cell_nets.len() as u32);
        }

        // Transpose: counting sort keeps per-net cell lists in ascending
        // cell order without any per-net allocation.
        let mut counts = vec![0u32; num_nets + 1];
        for &net in &cell_nets {
            counts[net.index() + 1] += 1;
        }
        for i in 0..num_nets {
            counts[i + 1] += counts[i];
        }
        let net_cell_offsets = counts.clone();
        let mut net_cells = vec![CellId::new(0); cell_nets.len()];
        let mut cursor = counts;
        for c in 0..num_cells {
            let cell = CellId::new(c);
            let (lo, hi) = (
                cell_net_offsets[c] as usize,
                cell_net_offsets[c + 1] as usize,
            );
            for &net in &cell_nets[lo..hi] {
                let slot = &mut cursor[net.index()];
                net_cells[*slot as usize] = cell;
                *slot += 1;
            }
        }

        ConnectivityIndex {
            cell_net_offsets,
            cell_nets,
            net_cell_offsets,
            net_cells,
        }
    }

    /// The distinct nets touching `cell` (inputs + output), ascending.
    #[inline]
    pub fn cell_nets(&self, cell: CellId) -> &[NetId] {
        let lo = self.cell_net_offsets[cell.index()] as usize;
        let hi = self.cell_net_offsets[cell.index() + 1] as usize;
        &self.cell_nets[lo..hi]
    }

    /// The distinct cells touching `net` (driver and sinks), ascending.
    #[inline]
    pub fn net_cells(&self, net: NetId) -> &[CellId] {
        let lo = self.net_cell_offsets[net.index()] as usize;
        let hi = self.net_cell_offsets[net.index() + 1] as usize;
        &self.net_cells[lo..hi]
    }

    /// Number of cells the index covers.
    pub fn num_cells(&self) -> usize {
        self.cell_net_offsets.len() - 1
    }

    /// Number of nets the index covers.
    pub fn num_nets(&self) -> usize {
        self.net_cell_offsets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::bench::{parse_bench, C17_BENCH};
    use crate::{GateFn, Library, NetlistBuilder};

    fn reference_cell_nets(n: &Netlist, cell: CellId) -> Vec<NetId> {
        let c = n.cell(cell);
        let mut v: Vec<NetId> = c.inputs().to_vec();
        v.push(c.output());
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn matches_reference_construction_on_c17() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let idx = ConnectivityIndex::build(&n);
        assert_eq!(idx.num_cells(), n.num_cells());
        assert_eq!(idx.num_nets(), n.num_nets());

        // Forward rows match the inline sort+dedup construction.
        let mut cells_of: Vec<Vec<CellId>> = vec![Vec::new(); n.num_nets()];
        for (id, _) in n.cells() {
            let reference = reference_cell_nets(&n, id);
            assert_eq!(idx.cell_nets(id), reference.as_slice());
            for &net in &reference {
                cells_of[net.index()].push(id);
            }
        }
        // Transpose rows match the inline push-in-cell-order construction.
        for (id, _) in n.nets() {
            assert_eq!(idx.net_cells(id), cells_of[id.index()].as_slice());
        }
    }

    #[test]
    fn multi_pin_self_edges_dedupe() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("dup", &lib);
        let a = b.input("a");
        // Both NAND pins on the same net: the net appears once in the row.
        let g = b.gate(GateFn::Nand, &[a, a]).unwrap();
        b.output("y", g);
        let n = b.finish().unwrap();
        let idx = ConnectivityIndex::build(&n);
        let cell = n.cells().next().unwrap().0;
        assert_eq!(idx.cell_nets(cell).len(), 2, "input net + output net");
        assert_eq!(idx.net_cells(n.cell(cell).inputs()[0]), &[cell]);
    }

    #[test]
    fn no_net_row_is_empty_on_c17() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let idx = ConnectivityIndex::build(&n);
        // Every net of c17 touches at least one cell.
        for (id, _) in n.nets() {
            assert!(!idx.net_cells(id).is_empty());
        }
    }
}
