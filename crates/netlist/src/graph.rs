//! Graph algorithms over a [`Netlist`]: topological order, levelization,
//! loop detection, reachability and fan-in/out cones.
//!
//! The randomization defense must never introduce a combinational loop (a
//! loop would let an attacker spot the modification, see Sec. 4 of the
//! paper); [`would_create_cycle`] is the query it runs before every swap.

use crate::id::{CellId, NetId};
use crate::netlist::{Driver, Netlist, Sink};
use crate::NetlistError;
use std::collections::VecDeque;

/// Computes a topological order of all cells (fan-in before fan-out).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalLoop`] naming one cell on a cycle
/// if the netlist is cyclic.
pub fn topo_order(netlist: &Netlist) -> Result<Vec<CellId>, NetlistError> {
    let n = netlist.num_cells();
    let mut indeg = vec![0u32; n];
    // In-degree of a cell = number of its input pins driven by cells.
    // Multiple pins fed by the same driver count separately, which is fine
    // for Kahn's algorithm as long as decrements mirror the counting.
    for (id, cell) in netlist.cells() {
        indeg[id.index()] = cell
            .inputs()
            .iter()
            .filter(|&&net| netlist.driver_cell(net).is_some())
            .count() as u32;
    }
    let mut queue: VecDeque<CellId> = (0..n)
        .map(CellId::new)
        .filter(|c| indeg[c.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(c) = queue.pop_front() {
        order.push(c);
        for sink in netlist.net(netlist.cell(c).output()).sinks() {
            if let Sink::Cell { cell, .. } = *sink {
                indeg[cell.index()] -= 1;
                if indeg[cell.index()] == 0 {
                    queue.push_back(cell);
                }
            }
        }
    }
    if order.len() != n {
        let stuck = (0..n)
            .map(CellId::new)
            .find(|c| indeg[c.index()] > 0)
            .expect("cycle implies a stuck cell");
        return Err(NetlistError::CombinationalLoop(
            netlist.cell(stuck).name.clone(),
        ));
    }
    Ok(order)
}

/// Logic level of every cell: `level = 1 + max(level of cell fan-ins)`,
/// with cells fed only by primary inputs at level 1.
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalLoop`] from [`topo_order`].
pub fn levelize(netlist: &Netlist) -> Result<Vec<u32>, NetlistError> {
    let order = topo_order(netlist)?;
    let mut level = vec![0u32; netlist.num_cells()];
    for c in order {
        let max_in = netlist
            .cell(c)
            .inputs()
            .iter()
            .filter_map(|&net| netlist.driver_cell(net))
            .map(|d| level[d.index()])
            .max()
            .unwrap_or(0);
        level[c.index()] = max_in + 1;
    }
    Ok(level)
}

/// Maximum logic depth of the design (0 for an empty netlist).
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalLoop`].
pub fn depth(netlist: &Netlist) -> Result<u32, NetlistError> {
    Ok(levelize(netlist)?.into_iter().max().unwrap_or(0))
}

/// `true` if combinational paths lead from cell `from` to cell `to`
/// (including `from == to`).
pub fn reaches(netlist: &Netlist, from: CellId, to: CellId) -> bool {
    reaches_with(netlist, from, to, &mut ReachScratch::new())
}

/// Reusable scratch for repeated reachability queries: the visited map is
/// epoch-stamped, so back-to-back queries over the same netlist reuse one
/// allocation instead of zeroing a fresh `num_cells` vector each call.
/// Results are identical to the scratch-free entry points.
#[derive(Debug, Default)]
pub struct ReachScratch {
    epoch: u32,
    mark: Vec<u32>,
    stack: Vec<CellId>,
}

impl ReachScratch {
    /// An empty scratch; buffers grow to fit on first use.
    pub fn new() -> ReachScratch {
        ReachScratch::default()
    }

    /// Opens a new query epoch sized for `netlist`, clearing marks in
    /// O(1) (amortized).
    fn begin(&mut self, netlist: &Netlist) {
        if self.mark.len() < netlist.num_cells() {
            self.mark.resize(netlist.num_cells(), 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.mark.iter_mut().for_each(|m| *m = 0);
                1
            }
        };
        self.stack.clear();
    }
}

/// [`reaches`] against caller-owned [`ReachScratch`] — same traversal,
/// same answer, no per-query allocation.
pub fn reaches_with(
    netlist: &Netlist,
    from: CellId,
    to: CellId,
    scratch: &mut ReachScratch,
) -> bool {
    if from == to {
        return true;
    }
    scratch.begin(netlist);
    let epoch = scratch.epoch;
    scratch.stack.push(from);
    scratch.mark[from.index()] = epoch;
    while let Some(c) = scratch.stack.pop() {
        for sink in netlist.net(netlist.cell(c).output()).sinks() {
            if let Sink::Cell { cell, .. } = *sink {
                if cell == to {
                    return true;
                }
                if scratch.mark[cell.index()] != epoch {
                    scratch.mark[cell.index()] = epoch;
                    scratch.stack.push(cell);
                }
            }
        }
    }
    false
}

/// Would attaching net `driver_net` to an input pin of `sink_cell` create a
/// combinational loop?
///
/// This is the guard the randomizer evaluates before every connectivity
/// swap: the new edge `driver → sink_cell` closes a cycle exactly when
/// `sink_cell` already reaches the driver cell.
pub fn would_create_cycle(netlist: &Netlist, driver_net: NetId, sink_cell: CellId) -> bool {
    would_create_cycle_with(netlist, driver_net, sink_cell, &mut ReachScratch::new())
}

/// [`would_create_cycle`] against caller-owned [`ReachScratch`]; the
/// per-candidate guard of the randomizer and the flow attack's
/// loop-avoidance reconstruction run thousands of these back to back.
pub fn would_create_cycle_with(
    netlist: &Netlist,
    driver_net: NetId,
    sink_cell: CellId,
    scratch: &mut ReachScratch,
) -> bool {
    match netlist.net(driver_net).driver() {
        Driver::Cell(d) => reaches_with(netlist, sink_cell, d, scratch),
        Driver::Port(_) => false, // primary inputs can never be downstream
    }
}

/// All cells in the transitive fan-in cone of `net` (drivers of drivers…).
pub fn fanin_cone(netlist: &Netlist, net: NetId) -> Vec<CellId> {
    let mut visited = vec![false; netlist.num_cells()];
    let mut stack: Vec<CellId> = netlist.driver_cell(net).into_iter().collect();
    let mut cone = Vec::new();
    while let Some(c) = stack.pop() {
        if visited[c.index()] {
            continue;
        }
        visited[c.index()] = true;
        cone.push(c);
        for &in_net in netlist.cell(c).inputs() {
            if let Some(d) = netlist.driver_cell(in_net) {
                if !visited[d.index()] {
                    stack.push(d);
                }
            }
        }
    }
    cone
}

/// All cells in the transitive fan-out cone of `net`.
pub fn fanout_cone(netlist: &Netlist, net: NetId) -> Vec<CellId> {
    let mut visited = vec![false; netlist.num_cells()];
    let mut stack: Vec<CellId> = netlist
        .net(net)
        .sinks()
        .iter()
        .filter_map(|s| match s {
            Sink::Cell { cell, .. } => Some(*cell),
            Sink::Port(_) => None,
        })
        .collect();
    let mut cone = Vec::new();
    while let Some(c) = stack.pop() {
        if visited[c.index()] {
            continue;
        }
        visited[c.index()] = true;
        cone.push(c);
        for sink in netlist.net(netlist.cell(c).output()).sinks() {
            if let Sink::Cell { cell, .. } = *sink {
                if !visited[cell.index()] {
                    stack.push(cell);
                }
            }
        }
    }
    cone
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateFn, Library, NetlistBuilder};

    fn chain(len: usize) -> Netlist {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("chain", &lib);
        let mut cur = b.input("a");
        for _ in 0..len {
            cur = b.gate(GateFn::Inv, &[cur]).unwrap();
        }
        b.output("y", cur);
        b.finish().unwrap()
    }

    #[test]
    fn topo_order_respects_edges() {
        let n = chain(5);
        let order = topo_order(&n).unwrap();
        assert_eq!(order.len(), 5);
        // In a chain built in order, topological position equals build order.
        let pos: Vec<usize> = order.iter().map(|c| c.index()).collect();
        assert_eq!(pos, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn levelize_chain() {
        let n = chain(4);
        let lv = levelize(&n).unwrap();
        assert_eq!(lv, vec![1, 2, 3, 4]);
        assert_eq!(depth(&n).unwrap(), 4);
    }

    #[test]
    fn reaches_transitively() {
        let n = chain(4);
        assert!(reaches(&n, CellId::new(0), CellId::new(3)));
        assert!(!reaches(&n, CellId::new(3), CellId::new(0)));
        assert!(reaches(&n, CellId::new(2), CellId::new(2)));
    }

    #[test]
    fn cycle_guard_detects_back_edge() {
        let n = chain(4);
        // Connecting the last inverter's output back to the first would loop.
        let last_out = n.cell(CellId::new(3)).output();
        assert!(would_create_cycle(&n, last_out, CellId::new(0)));
        // Forward edge is fine.
        let first_out = n.cell(CellId::new(0)).output();
        assert!(!would_create_cycle(&n, first_out, CellId::new(3)));
        // Primary-input nets never create cycles.
        let pi = n.input_ports()[0].net;
        assert!(!would_create_cycle(&n, pi, CellId::new(0)));
    }

    #[test]
    fn cones_cover_chain() {
        let n = chain(4);
        let out_net = n.cell(CellId::new(3)).output();
        let cone = fanin_cone(&n, out_net);
        assert_eq!(cone.len(), 4);
        let in_net = n.input_ports()[0].net;
        let fo = fanout_cone(&n, in_net);
        assert_eq!(fo.len(), 4);
    }

    #[test]
    fn diamond_levels() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("diamond", &lib);
        let a = b.input("a");
        let l = b.gate(GateFn::Inv, &[a]).unwrap();
        let r = b.gate(GateFn::Buf, &[a]).unwrap();
        let y = b.gate(GateFn::And, &[l, r]).unwrap();
        b.output("y", y);
        let n = b.finish().unwrap();
        let lv = levelize(&n).unwrap();
        assert_eq!(lv[2], 2); // the AND sits one level above both branches
    }
}
