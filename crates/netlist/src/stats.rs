//! Summary statistics over a netlist, used by the benchmark generators to
//! verify they hit their target profiles and by the experiment reports.

use crate::graph::depth;
use crate::netlist::Netlist;
use crate::GateFn;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics of a [`Netlist`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Number of cell instances.
    pub cells: usize,
    /// Number of nets.
    pub nets: usize,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Maximum logic depth in gate levels.
    pub depth: u32,
    /// Instance count per gate function.
    pub gates_by_fn: BTreeMap<GateFn, usize>,
    /// Average sinks per net.
    pub avg_fanout: f64,
    /// Largest sink count on any net.
    pub max_fanout: usize,
    /// Total standard-cell area in µm².
    pub area_um2: f64,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational loop (netlists built
    /// through the public APIs never do).
    pub fn of(netlist: &Netlist) -> Self {
        let mut gates_by_fn = BTreeMap::new();
        for (_, cell) in netlist.cells() {
            *gates_by_fn
                .entry(netlist.library().cell(cell.lib).function)
                .or_insert(0) += 1;
        }
        let sink_counts: Vec<usize> = netlist.nets().map(|(_, n)| n.sinks().len()).collect();
        let total_sinks: usize = sink_counts.iter().sum();
        NetlistStats {
            cells: netlist.num_cells(),
            nets: netlist.num_nets(),
            inputs: netlist.input_ports().len(),
            outputs: netlist.output_ports().len(),
            depth: depth(netlist).expect("acyclic netlist"),
            avg_fanout: if sink_counts.is_empty() {
                0.0
            } else {
                total_sinks as f64 / sink_counts.len() as f64
            },
            max_fanout: sink_counts.into_iter().max().unwrap_or(0),
            gates_by_fn,
            area_um2: netlist.total_cell_area_um2(),
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cells: {}  nets: {}  PI: {}  PO: {}  depth: {}",
            self.cells, self.nets, self.inputs, self.outputs, self.depth
        )?;
        writeln!(
            f,
            "fanout avg: {:.2}  max: {}  area: {:.1} µm²",
            self.avg_fanout, self.max_fanout, self.area_um2
        )?;
        for (g, n) in &self.gates_by_fn {
            writeln!(f, "  {g}: {n}")?;
        }
        Ok(())
    }
}

// GateFn ordering for the BTreeMap key.
impl Ord for GateFn {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (*self as u8).cmp(&(*other as u8))
    }
}

impl PartialOrd for GateFn {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::bench::{parse_bench, C17_BENCH};
    use crate::Library;

    #[test]
    fn c17_stats() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let s = NetlistStats::of(&n);
        assert_eq!(s.cells, 6);
        assert_eq!(s.inputs, 5);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.depth, 3);
        assert_eq!(s.gates_by_fn[&GateFn::Nand], 6);
        assert!(s.avg_fanout > 0.0);
        assert!(s.area_um2 > 0.0);
        let rendered = s.to_string();
        assert!(rendered.contains("cells: 6"));
    }
}
