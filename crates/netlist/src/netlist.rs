//! The central gate-level netlist container.

use crate::id::{CellId, LibCellId, NetId, PortId};
use crate::library::Library;
use crate::NetlistError;
use std::fmt;
use std::sync::Arc;

/// A primary input or output port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name as it appears in the source file.
    pub name: String,
    /// The net attached to this port.
    pub net: NetId,
}

/// What drives a net: either a cell's (single) output or a primary input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Driver {
    /// Driven by the output pin of a cell.
    Cell(CellId),
    /// Driven by a primary input; the id indexes [`Netlist::input_ports`].
    Port(PortId),
}

/// What a net feeds: a cell input pin or a primary output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sink {
    /// An input pin of a cell.
    Cell {
        /// The sink cell.
        cell: CellId,
        /// Zero-based input pin index within that cell.
        pin: u8,
    },
    /// A primary output; the id indexes [`Netlist::output_ports`].
    Port(PortId),
}

impl fmt::Display for Sink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sink::Cell { cell, pin } => write!(f, "{cell}.{pin}"),
            Sink::Port(p) => write!(f, "out:{p}"),
        }
    }
}

/// One standard-cell instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Instance name.
    pub name: String,
    /// Which library cell this instantiates.
    pub lib: LibCellId,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) output: NetId,
}

impl Cell {
    /// Nets connected to this cell's input pins, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The net driven by this cell's output pin.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// One net: a single driver and any number of sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name.
    pub name: String,
    pub(crate) driver: Driver,
    pub(crate) sinks: Vec<Sink>,
}

impl Net {
    /// The driver of this net.
    pub fn driver(&self) -> Driver {
        self.driver
    }

    /// The sinks of this net.
    pub fn sinks(&self) -> &[Sink] {
        &self.sinks
    }

    /// Number of pins on the net (driver + sinks).
    pub fn degree(&self) -> usize {
        1 + self.sinks.len()
    }
}

/// A combinational gate-level netlist with single-output cells.
///
/// Construct one with [`crate::NetlistBuilder`] or the parsers in
/// [`crate::parse`]; edit connectivity with [`Netlist::move_sink`] (the
/// primitive the randomization defense is built on).
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) library: Arc<Library>,
    pub(crate) cells: Vec<Cell>,
    pub(crate) nets: Vec<Net>,
    pub(crate) inputs: Vec<Port>,
    pub(crate) outputs: Vec<Port>,
}

impl Netlist {
    pub(crate) fn from_parts(
        name: String,
        library: Arc<Library>,
        cells: Vec<Cell>,
        nets: Vec<Net>,
        inputs: Vec<Port>,
        outputs: Vec<Port>,
    ) -> Self {
        Netlist {
            name,
            library,
            cells,
            nets,
            inputs,
            outputs,
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The library this netlist is mapped to.
    pub fn library(&self) -> &Arc<Library> {
        &self.library
    }

    /// Number of cell instances.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Primary input ports, indexed by the [`PortId`] in [`Driver::Port`].
    pub fn input_ports(&self) -> &[Port] {
        &self.inputs
    }

    /// Primary output ports, indexed by the [`PortId`] in [`Sink::Port`].
    pub fn output_ports(&self) -> &[Port] {
        &self.outputs
    }

    /// Returns a cell by handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Returns a net by handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId::new(i), c))
    }

    /// Iterates over `(id, net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::new(i), n))
    }

    /// The cell driving `net`, or `None` if a primary input drives it.
    pub fn driver_cell(&self, net: NetId) -> Option<CellId> {
        match self.net(net).driver {
            Driver::Cell(c) => Some(c),
            Driver::Port(_) => None,
        }
    }

    /// Capacitive load on `net` in fF: the sum of the input-pin caps of all
    /// cell sinks (primary outputs are modeled with a fixed 2 fF pad load).
    pub fn net_pin_load_ff(&self, net: NetId) -> f64 {
        const PAD_LOAD_FF: f64 = 2.0;
        self.net(net)
            .sinks
            .iter()
            .map(|s| match s {
                Sink::Cell { cell, .. } => self.library.cell(self.cell(*cell).lib).input_cap_ff,
                Sink::Port(_) => PAD_LOAD_FF,
            })
            .sum()
    }

    /// Moves `sink` from net `from` to net `to`, keeping cell pin bindings
    /// and port bindings consistent. This is the single connectivity edit
    /// the randomization defense and the attacks' netlist reconstruction
    /// are built from.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::SinkNotOnNet`] if `sink` is not currently a
    /// sink of `from`.
    pub fn move_sink(&mut self, from: NetId, sink: Sink, to: NetId) -> Result<(), NetlistError> {
        let from_net = &mut self.nets[from.index()];
        let pos = from_net
            .sinks
            .iter()
            .position(|&s| s == sink)
            .ok_or_else(|| NetlistError::SinkNotOnNet {
                sink: sink.to_string(),
                net: from_net.name.clone(),
            })?;
        from_net.sinks.swap_remove(pos);
        self.nets[to.index()].sinks.push(sink);
        match sink {
            Sink::Cell { cell, pin } => {
                self.cells[cell.index()].inputs[pin as usize] = to;
            }
            Sink::Port(p) => {
                self.outputs[p.index()].net = to;
            }
        }
        Ok(())
    }

    /// Replaces the library cell of an instance (used for buffer resizing
    /// during timing optimization). The function and fanin must match.
    ///
    /// # Panics
    ///
    /// Panics if the new library cell has a different input count or
    /// function from the old one: that would silently change logic.
    pub fn resize_cell(&mut self, cell: CellId, new_lib: LibCellId) {
        let old = self.library.cell(self.cells[cell.index()].lib);
        let new = self.library.cell(new_lib);
        assert_eq!(
            old.num_inputs, new.num_inputs,
            "resize must preserve pin count"
        );
        assert_eq!(old.function, new.function, "resize must preserve function");
        self.cells[cell.index()].lib = new_lib;
    }

    /// Total standard-cell area in µm².
    pub fn total_cell_area_um2(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| self.library.cell(c.lib).area_um2)
            .sum()
    }

    /// Verifies internal consistency: every cell pin binding matches the
    /// net's sink list, every driver matches, and port bindings agree.
    ///
    /// # Errors
    ///
    /// Returns a descriptive [`NetlistError`] on the first inconsistency.
    /// This is an invariant check used heavily by tests; production flows
    /// may skip it.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, cell) in self.cells() {
            let lib = self.library.cell(cell.lib);
            if cell.inputs.len() != lib.num_inputs {
                return Err(NetlistError::PortMismatch(format!(
                    "cell `{}` has {} inputs, library cell `{}` expects {}",
                    cell.name,
                    cell.inputs.len(),
                    lib.name,
                    lib.num_inputs
                )));
            }
            for (pin, &net) in cell.inputs.iter().enumerate() {
                let on_net = self.net(net).sinks.iter().any(
                    |s| matches!(s, Sink::Cell { cell: c, pin: p } if *c == id && *p as usize == pin),
                );
                if !on_net {
                    return Err(NetlistError::SinkNotOnNet {
                        sink: format!("{id}.{pin}"),
                        net: self.net(net).name.clone(),
                    });
                }
            }
            if self.net(cell.output).driver != Driver::Cell(id) {
                return Err(NetlistError::PortMismatch(format!(
                    "cell `{}` claims to drive net `{}` but the net disagrees",
                    cell.name,
                    self.net(cell.output).name
                )));
            }
        }
        for (i, port) in self.inputs.iter().enumerate() {
            if self.net(port.net).driver != Driver::Port(PortId::new(i)) {
                return Err(NetlistError::PortMismatch(format!(
                    "input port `{}` not driving its net",
                    port.name
                )));
            }
        }
        for (i, port) in self.outputs.iter().enumerate() {
            let ok = self
                .net(port.net)
                .sinks
                .iter()
                .any(|s| matches!(s, Sink::Port(p) if p.index() == i));
            if !ok {
                return Err(NetlistError::PortMismatch(format!(
                    "output port `{}` not a sink of its net",
                    port.name
                )));
            }
        }
        for (id, net) in self.nets() {
            for sink in &net.sinks {
                let bound = match *sink {
                    Sink::Cell { cell, pin } => self.cell(cell).inputs[pin as usize] == id,
                    Sink::Port(p) => self.outputs[p.index()].net == id,
                };
                if !bound {
                    return Err(NetlistError::SinkNotOnNet {
                        sink: sink.to_string(),
                        net: net.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{GateFn, Library, NetlistBuilder, Sink};

    fn tiny() -> crate::Netlist {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("tiny", &lib);
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.gate(GateFn::Nand, &[a, c]).unwrap();
        let g2 = b.gate(GateFn::Inv, &[g1]).unwrap();
        b.output("y", g2);
        b.finish().unwrap()
    }

    #[test]
    fn construction_is_consistent() {
        let n = tiny();
        assert_eq!(n.num_cells(), 2);
        assert_eq!(n.input_ports().len(), 2);
        assert_eq!(n.output_ports().len(), 1);
        n.validate().unwrap();
    }

    #[test]
    fn move_sink_rewires_and_stays_consistent() {
        let mut n = tiny();
        // Move the inverter's input from the NAND output to primary input a.
        let inv = n
            .cells()
            .find(|(_, c)| n.library().cell(c.lib).function == GateFn::Inv)
            .map(|(id, _)| id)
            .unwrap();
        let from = n.cell(inv).inputs()[0];
        let to = n.input_ports()[0].net;
        n.move_sink(from, Sink::Cell { cell: inv, pin: 0 }, to)
            .unwrap();
        assert_eq!(n.cell(inv).inputs()[0], to);
        n.validate().unwrap();
        // The NAND output net lost its only sink.
        assert!(n.net(from).sinks().is_empty());
    }

    #[test]
    fn move_sink_rejects_wrong_net() {
        let mut n = tiny();
        let a = n.input_ports()[0].net;
        let b = n.input_ports()[1].net;
        let bogus = Sink::Port(crate::PortId::new(0));
        // The output port is not a sink of net `a`.
        assert!(n.move_sink(a, bogus, b).is_err());
    }

    #[test]
    fn net_pin_load_sums_sink_caps() {
        let n = tiny();
        let a = n.input_ports()[0].net;
        // `a` feeds one NAND2_X1 input pin (1.1 fF).
        assert!((n.net_pin_load_ff(a) - 1.1).abs() < 1e-9);
    }

    #[test]
    fn resize_cell_swaps_drive() {
        let mut n = tiny();
        let lib = n.library().clone();
        let inv = n
            .cells()
            .find(|(_, c)| lib.cell(c.lib).function == GateFn::Inv)
            .map(|(id, _)| id)
            .unwrap();
        let inv_x4 = lib.find("INV_X4").unwrap();
        n.resize_cell(inv, inv_x4);
        assert_eq!(lib.cell(n.cell(inv).lib).name, "INV_X4");
        n.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "preserve function")]
    fn resize_cell_rejects_function_change() {
        let mut n = tiny();
        let lib = n.library().clone();
        let inv = n
            .cells()
            .find(|(_, c)| lib.cell(c.lib).function == GateFn::Inv)
            .map(|(id, _)| id)
            .unwrap();
        n.resize_cell(inv, lib.find("BUF_X1").unwrap());
    }

    #[test]
    fn total_area_positive() {
        assert!(tiny().total_cell_area_um2() > 1.0);
    }
}
