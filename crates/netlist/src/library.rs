//! Standard-cell library model.
//!
//! The split-manufacturing paper builds its layouts on the Nangate 45 nm
//! Open Cell Library. We reproduce the subset that matters for the flow:
//! combinational gates with one output, with per-cell area, pin capacitance,
//! drive resistance, intrinsic delay and leakage numbers in the same ballpark
//! as the published Nangate data. These values feed the placement (area),
//! timing (RC delay) and power (C·V²·f + leakage) engines.

use crate::id::LibCellId;
use crate::NetlistError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Boolean function computed by a library cell.
///
/// All functions are n-ary where that makes sense; [`GateFn::Buf`] and
/// [`GateFn::Inv`] are strictly unary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateFn {
    /// Identity (buffer).
    Buf,
    /// Negation (inverter).
    Inv,
    /// Logical AND of all inputs.
    And,
    /// Negated AND.
    Nand,
    /// Logical OR of all inputs.
    Or,
    /// Negated OR.
    Nor,
    /// Exclusive OR (parity) of all inputs.
    Xor,
    /// Negated exclusive OR.
    Xnor,
}

impl GateFn {
    /// Evaluates the function over 64 patterns at once (one per bit lane).
    ///
    /// `inputs` holds one 64-bit word per input pin.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    #[inline]
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        assert!(!inputs.is_empty(), "gate evaluated with no inputs");
        match self {
            GateFn::Buf => inputs[0],
            GateFn::Inv => !inputs[0],
            GateFn::And => inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateFn::Nand => !inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateFn::Or => inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateFn::Nor => !inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateFn::Xor => inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            GateFn::Xnor => !inputs.iter().fold(0u64, |acc, &w| acc ^ w),
        }
    }

    /// Returns the canonical upper-case name used in `.bench` files.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateFn::Buf => "BUFF",
            GateFn::Inv => "NOT",
            GateFn::And => "AND",
            GateFn::Nand => "NAND",
            GateFn::Or => "OR",
            GateFn::Nor => "NOR",
            GateFn::Xor => "XOR",
            GateFn::Xnor => "XNOR",
        }
    }

    /// Parses a `.bench`-style gate keyword (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownLibCell`] if the keyword is not a
    /// recognized gate function.
    pub fn from_bench_name(name: &str) -> Result<Self, NetlistError> {
        match name.to_ascii_uppercase().as_str() {
            "BUF" | "BUFF" => Ok(GateFn::Buf),
            "NOT" | "INV" => Ok(GateFn::Inv),
            "AND" => Ok(GateFn::And),
            "NAND" => Ok(GateFn::Nand),
            "OR" => Ok(GateFn::Or),
            "NOR" => Ok(GateFn::Nor),
            "XOR" => Ok(GateFn::Xor),
            "XNOR" => Ok(GateFn::Xnor),
            other => Err(NetlistError::UnknownLibCell(other.to_string())),
        }
    }

    /// `true` for functions that only accept exactly one input.
    pub fn is_unary(self) -> bool {
        matches!(self, GateFn::Buf | GateFn::Inv)
    }
}

impl fmt::Display for GateFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_name())
    }
}

/// One standard-cell definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibCell {
    /// Library name, e.g. `"NAND2_X1"`.
    pub name: String,
    /// Boolean function.
    pub function: GateFn,
    /// Number of input pins (1–4 in the shipped library).
    pub num_inputs: usize,
    /// Footprint area in µm².
    pub area_um2: f64,
    /// Capacitance of each input pin in fF.
    pub input_cap_ff: f64,
    /// Equivalent output drive resistance in kΩ (lower = stronger drive).
    pub drive_res_kohm: f64,
    /// Intrinsic (unloaded) delay in ps.
    pub intrinsic_delay_ps: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
}

impl LibCell {
    /// Gate delay in ps for a given capacitive load in fF, using the linear
    /// delay model `d = intrinsic + R·C_load`.
    #[inline]
    pub fn delay_ps(&self, load_ff: f64) -> f64 {
        self.intrinsic_delay_ps + self.drive_res_kohm * load_ff
    }

    /// Relative drive strength (X1 = 1.0), inferred from drive resistance.
    pub fn drive_strength(&self) -> f64 {
        // X1 inverter reference resistance in this library.
        const R_X1: f64 = 8.0;
        R_X1 / self.drive_res_kohm
    }
}

/// A collection of [`LibCell`] definitions with name lookup.
///
/// Use [`Library::nangate45`] for the library the whole reproduction runs
/// on; [`Library::new`] exists for tests and custom technologies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Library {
    pub(crate) name: String,
    pub(crate) cells: Vec<LibCell>,
    #[serde(skip)]
    by_name: HashMap<String, LibCellId>,
}

impl Library {
    /// Creates an empty library with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Library {
            name: name.into(),
            cells: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The library name (e.g. `"nangate45"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a cell definition, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if a cell with the same name already exists: library cell
    /// names are unique by construction.
    pub fn add_cell(&mut self, cell: LibCell) -> LibCellId {
        let id = LibCellId::new(self.cells.len());
        let prev = self.by_name.insert(cell.name.clone(), id);
        assert!(prev.is_none(), "duplicate library cell `{}`", cell.name);
        self.cells.push(cell);
        id
    }

    /// Looks a cell up by exact name.
    pub fn find(&self, name: &str) -> Option<LibCellId> {
        self.by_name.get(name).copied()
    }

    /// Returns the definition behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this library.
    #[inline]
    pub fn cell(&self, id: LibCellId) -> &LibCell {
        &self.cells[id.index()]
    }

    /// Number of cell definitions.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the library holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LibCellId, &LibCell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (LibCellId::new(i), c))
    }

    /// Picks the cheapest cell implementing `function` with exactly
    /// `fanin` inputs at drive strength X1.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadFanin`] when no such cell exists (the
    /// builder decomposes wide gates before calling this).
    pub fn cell_for(&self, function: GateFn, fanin: usize) -> Result<LibCellId, NetlistError> {
        self.iter()
            .filter(|(_, c)| c.function == function && c.num_inputs == fanin)
            .min_by(|a, b| a.1.area_um2.total_cmp(&b.1.area_um2))
            .map(|(id, _)| id)
            .ok_or_else(|| NetlistError::BadFanin {
                function: function.to_string(),
                fanin,
            })
    }

    /// Returns all drive variants (X1, X2, …) of `function` with the given
    /// fanin, sorted by increasing drive strength.
    pub fn drive_variants(&self, function: GateFn, fanin: usize) -> Vec<LibCellId> {
        let mut v: Vec<LibCellId> = self
            .iter()
            .filter(|(_, c)| c.function == function && c.num_inputs == fanin)
            .map(|(id, _)| id)
            .collect();
        v.sort_by(|&a, &b| {
            self.cell(a)
                .drive_strength()
                .total_cmp(&self.cell(b).drive_strength())
        });
        v
    }

    /// Builds the Nangate-45-like library used throughout the reproduction.
    ///
    /// Numbers are representative of the published Nangate FreePDK45 data:
    /// site height 1.4 µm, X1 inverter ≈ 0.532 µm², input caps around 1 fF,
    /// intrinsic delays of a few ps and leakage in the single-digit nW.
    pub fn nangate45() -> Self {
        let mut lib = Library::new("nangate45");
        // (name, fn, fanin, area µm², cap fF, R kΩ, d0 ps, leak nW)
        type LibRow = (&'static str, GateFn, usize, f64, f64, f64, f64, f64);
        let rows: &[LibRow] = &[
            ("INV_X1", GateFn::Inv, 1, 0.532, 1.0, 8.0, 6.0, 1.2),
            ("INV_X2", GateFn::Inv, 1, 0.798, 2.0, 4.0, 6.0, 2.2),
            ("INV_X4", GateFn::Inv, 1, 1.330, 4.0, 2.0, 6.5, 4.2),
            ("BUF_X1", GateFn::Buf, 1, 0.798, 1.0, 8.0, 14.0, 1.6),
            ("BUF_X2", GateFn::Buf, 1, 1.064, 1.1, 4.0, 15.0, 2.6),
            ("BUF_X4", GateFn::Buf, 1, 1.596, 1.3, 2.0, 16.0, 4.8),
            ("BUF_X8", GateFn::Buf, 1, 2.660, 1.8, 1.0, 18.0, 9.0),
            ("AND2_X1", GateFn::And, 2, 1.064, 1.0, 8.0, 18.0, 2.0),
            ("AND3_X1", GateFn::And, 3, 1.330, 1.0, 8.0, 22.0, 2.6),
            ("AND4_X1", GateFn::And, 4, 1.596, 1.0, 8.0, 26.0, 3.2),
            ("NAND2_X1", GateFn::Nand, 2, 0.798, 1.1, 8.5, 8.0, 1.6),
            ("NAND2_X2", GateFn::Nand, 2, 1.064, 2.2, 4.2, 8.5, 3.0),
            ("NAND3_X1", GateFn::Nand, 3, 1.064, 1.2, 9.0, 11.0, 2.0),
            ("NAND4_X1", GateFn::Nand, 4, 1.330, 1.3, 9.5, 14.0, 2.4),
            ("OR2_X1", GateFn::Or, 2, 1.064, 1.0, 8.0, 19.0, 2.0),
            ("OR3_X1", GateFn::Or, 3, 1.330, 1.0, 8.0, 23.0, 2.6),
            ("OR4_X1", GateFn::Or, 4, 1.596, 1.0, 8.0, 27.0, 3.2),
            ("NOR2_X1", GateFn::Nor, 2, 0.798, 1.1, 9.0, 9.0, 1.7),
            ("NOR2_X2", GateFn::Nor, 2, 1.064, 2.2, 4.5, 9.5, 3.1),
            ("NOR3_X1", GateFn::Nor, 3, 1.064, 1.2, 9.5, 12.0, 2.1),
            ("NOR4_X1", GateFn::Nor, 4, 1.330, 1.3, 10.0, 15.0, 2.5),
            ("XOR2_X1", GateFn::Xor, 2, 1.596, 1.5, 9.0, 24.0, 2.8),
            ("XNOR2_X1", GateFn::Xnor, 2, 1.596, 1.5, 9.0, 24.0, 2.8),
        ];
        for &(name, function, fanin, area, cap, res, d0, leak) in rows {
            lib.add_cell(LibCell {
                name: name.to_string(),
                function,
                num_inputs: fanin,
                area_um2: area,
                input_cap_ff: cap,
                drive_res_kohm: res,
                intrinsic_delay_ps: d0,
                leakage_nw: leak,
            });
        }
        lib
    }

    /// Rebuilds the name index; needed after deserializing a library.
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), LibCellId::new(i)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_word_truth_tables() {
        // Two-input truth table in the low four lanes: a = 0011, b = 0101.
        let a = 0b0011u64;
        let b = 0b0101u64;
        let m = 0b1111u64;
        assert_eq!(GateFn::And.eval_word(&[a, b]) & m, 0b0001);
        assert_eq!(GateFn::Nand.eval_word(&[a, b]) & m, 0b1110);
        assert_eq!(GateFn::Or.eval_word(&[a, b]) & m, 0b0111);
        assert_eq!(GateFn::Nor.eval_word(&[a, b]) & m, 0b1000);
        assert_eq!(GateFn::Xor.eval_word(&[a, b]) & m, 0b0110);
        assert_eq!(GateFn::Xnor.eval_word(&[a, b]) & m, 0b1001);
        assert_eq!(GateFn::Buf.eval_word(&[a]) & m, a);
        assert_eq!(GateFn::Inv.eval_word(&[a]) & m, 0b1100);
    }

    #[test]
    fn eval_word_nary() {
        let w = [0b1111, 0b1010, 0b1100u64];
        assert_eq!(GateFn::And.eval_word(&w) & 0xF, 0b1000);
        assert_eq!(GateFn::Xor.eval_word(&w) & 0xF, 0b1001);
    }

    #[test]
    fn nangate45_lookup() {
        let lib = Library::nangate45();
        assert!(!lib.is_empty());
        let nand2 = lib.find("NAND2_X1").expect("NAND2_X1 present");
        let c = lib.cell(nand2);
        assert_eq!(c.function, GateFn::Nand);
        assert_eq!(c.num_inputs, 2);
        assert!(c.area_um2 > 0.0);
    }

    #[test]
    fn cell_for_picks_min_area() {
        let lib = Library::nangate45();
        let id = lib.cell_for(GateFn::Nand, 2).unwrap();
        assert_eq!(lib.cell(id).name, "NAND2_X1");
    }

    #[test]
    fn cell_for_rejects_unrealizable_fanin() {
        let lib = Library::nangate45();
        let err = lib.cell_for(GateFn::And, 9).unwrap_err();
        assert!(matches!(err, NetlistError::BadFanin { fanin: 9, .. }));
    }

    #[test]
    fn drive_variants_sorted_by_strength() {
        let lib = Library::nangate45();
        let bufs = lib.drive_variants(GateFn::Buf, 1);
        assert_eq!(bufs.len(), 4);
        let strengths: Vec<f64> = bufs.iter().map(|&b| lib.cell(b).drive_strength()).collect();
        assert!(strengths.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(lib.cell(*bufs.last().unwrap()).name, "BUF_X8");
    }

    #[test]
    fn delay_model_monotone_in_load() {
        let lib = Library::nangate45();
        let inv = lib.cell(lib.find("INV_X1").unwrap());
        assert!(inv.delay_ps(10.0) > inv.delay_ps(1.0));
    }

    #[test]
    fn bench_name_roundtrip() {
        for f in [
            GateFn::Buf,
            GateFn::Inv,
            GateFn::And,
            GateFn::Nand,
            GateFn::Or,
            GateFn::Nor,
            GateFn::Xor,
            GateFn::Xnor,
        ] {
            assert_eq!(GateFn::from_bench_name(f.bench_name()).unwrap(), f);
        }
        assert!(GateFn::from_bench_name("MAJ").is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate library cell")]
    fn duplicate_cell_panics() {
        let mut lib = Library::nangate45();
        lib.add_cell(LibCell {
            name: "INV_X1".into(),
            function: GateFn::Inv,
            num_inputs: 1,
            area_um2: 1.0,
            input_cap_ff: 1.0,
            drive_res_kohm: 1.0,
            intrinsic_delay_ps: 1.0,
            leakage_nw: 1.0,
        });
    }
}
