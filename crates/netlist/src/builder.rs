//! Incremental netlist construction.

use crate::id::{CellId, NetId, PortId};
use crate::library::{GateFn, Library};
use crate::netlist::{Cell, Driver, Net, Netlist, Port, Sink};
use crate::NetlistError;
use std::collections::HashMap;
use std::sync::Arc;

/// Builds a [`Netlist`] gate by gate.
///
/// Gates wider than the library supports (the shipped library tops out at
/// four inputs) are decomposed into balanced trees automatically, matching
/// what a synthesis tool would emit for the wide ISCAS-85 gates.
///
/// # Example
///
/// ```
/// use sm_netlist::{Library, NetlistBuilder, GateFn};
/// # fn main() -> Result<(), sm_netlist::NetlistError> {
/// let lib = Library::nangate45();
/// let mut b = NetlistBuilder::new("wide", &lib);
/// let ins: Vec<_> = (0..9).map(|i| b.input(format!("i{i}"))).collect();
/// let y = b.gate(GateFn::Nand, &ins)?; // decomposed into an AND tree + INV
/// b.output("y", y);
/// let n = b.finish()?;
/// assert!(n.num_cells() > 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    library: Arc<Library>,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
    net_names: HashMap<String, NetId>,
    fresh: u64,
}

impl NetlistBuilder {
    /// Starts a new design named `name` mapped onto `library`.
    pub fn new(name: impl Into<String>, library: &Library) -> Self {
        NetlistBuilder {
            name: name.into(),
            library: Arc::new(library.clone()),
            cells: Vec::new(),
            nets: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            net_names: HashMap::new(),
            fresh: 0,
        }
    }

    /// Adds a primary input, returning the net it drives.
    ///
    /// # Panics
    ///
    /// Panics if an input with this name already exists; use
    /// [`NetlistBuilder::try_input`] for fallible construction from
    /// untrusted files.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        self.try_input(name).expect("duplicate input name")
    }

    /// Fallible variant of [`NetlistBuilder::input`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn try_input(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let name = name.into();
        if self.net_names.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let port = PortId::new(self.inputs.len());
        let net = self.push_net(name.clone(), Driver::Port(port));
        self.inputs.push(Port {
            name: name.clone(),
            net,
        });
        self.net_names.insert(name, net);
        Ok(net)
    }

    /// Marks `net` as a primary output named `name`.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        let port = PortId::new(self.outputs.len());
        self.nets[net.index()].sinks.push(Sink::Port(port));
        self.outputs.push(Port {
            name: name.into(),
            net,
        });
    }

    /// Instantiates a gate computing `function` over `inputs`, returning the
    /// net driven by its output. Wide gates are decomposed into trees of
    /// library-supported fanins.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadFanin`] for empty inputs or for unary
    /// functions applied to several nets.
    pub fn gate(&mut self, function: GateFn, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        if inputs.is_empty() || (function.is_unary() && inputs.len() != 1) {
            return Err(NetlistError::BadFanin {
                function: function.to_string(),
                fanin: inputs.len(),
            });
        }
        if inputs.len() == 1 && !function.is_unary() {
            // Degenerate single-input AND/OR/XOR is a buffer; NAND/NOR/XNOR
            // an inverter. Some .bench files contain these.
            let f = match function {
                GateFn::And | GateFn::Or | GateFn::Xor => GateFn::Buf,
                GateFn::Nand | GateFn::Nor | GateFn::Xnor => GateFn::Inv,
                _ => unreachable!(),
            };
            return self.gate(f, inputs);
        }
        let max = self.max_fanin(function);
        if inputs.len() <= max {
            let lib = self.library.cell_for(function, inputs.len())?;
            return Ok(self.raw_cell(lib, inputs));
        }
        // Decompose: AND/OR/XOR trees keep the same function at every level;
        // NAND = INV(AND-tree), NOR = INV(OR-tree), XNOR = INV(XOR-tree).
        match function {
            GateFn::And | GateFn::Or | GateFn::Xor => self.tree(function, inputs),
            GateFn::Nand => {
                let t = self.tree(GateFn::And, inputs)?;
                self.gate(GateFn::Inv, &[t])
            }
            GateFn::Nor => {
                let t = self.tree(GateFn::Or, inputs)?;
                self.gate(GateFn::Inv, &[t])
            }
            GateFn::Xnor => {
                let t = self.tree(GateFn::Xor, inputs)?;
                self.gate(GateFn::Inv, &[t])
            }
            GateFn::Buf | GateFn::Inv => unreachable!("unary handled above"),
        }
    }

    /// Instantiates a named gate without decomposition, for parsers that
    /// reference explicit library cells.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownLibCell`] for unknown names and
    /// [`NetlistError::BadFanin`] when the pin count does not match.
    pub fn lib_gate(&mut self, lib_name: &str, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        let lib = self
            .library
            .find(lib_name)
            .ok_or_else(|| NetlistError::UnknownLibCell(lib_name.to_string()))?;
        if self.library.cell(lib).num_inputs != inputs.len() {
            return Err(NetlistError::BadFanin {
                function: lib_name.to_string(),
                fanin: inputs.len(),
            });
        }
        Ok(self.raw_cell(lib, inputs))
    }

    /// Finishes construction, checking for combinational loops.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the built graph has a
    /// cycle.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        let netlist = Netlist::from_parts(
            self.name,
            self.library,
            self.cells,
            self.nets,
            self.inputs,
            self.outputs,
        );
        crate::graph::topo_order(&netlist)?;
        Ok(netlist)
    }

    /// Looks up the net previously registered under `name`, registering a
    /// placeholder error otherwise. Used by parsers.
    pub fn net_by_name(&self, name: &str) -> Result<NetId, NetlistError> {
        self.net_names
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UnknownSignal(name.to_string()))
    }

    /// Registers `name` as an alias for a gate output so later gates can
    /// reference it. Parsers call this after [`NetlistBuilder::gate`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn name_net(&mut self, name: impl Into<String>, net: NetId) -> Result<(), NetlistError> {
        let name = name.into();
        if self.net_names.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        self.net_names.insert(name, net);
        Ok(())
    }

    fn max_fanin(&self, function: GateFn) -> usize {
        (2..=8)
            .rev()
            .find(|&k| self.library.cell_for(function, k).is_ok())
            .unwrap_or(2)
    }

    fn tree(&mut self, function: GateFn, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        let max = self.max_fanin(function);
        let mut level: Vec<NetId> = inputs.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(max));
            for chunk in level.chunks(max) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    let lib = self.library.cell_for(function, chunk.len())?;
                    next.push(self.raw_cell(lib, chunk));
                }
            }
            level = next;
        }
        Ok(level[0])
    }

    fn raw_cell(&mut self, lib: crate::LibCellId, inputs: &[NetId]) -> NetId {
        let cell_id = CellId::new(self.cells.len());
        let out_name = format!("__g{}", self.fresh);
        self.fresh += 1;
        let out = self.push_net(out_name, Driver::Cell(cell_id));
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()].sinks.push(Sink::Cell {
                cell: cell_id,
                pin: pin as u8,
            });
        }
        self.cells.push(Cell {
            name: format!("U{}", cell_id.index()),
            lib,
            inputs: inputs.to_vec(),
            output: out,
        });
        out
    }

    fn push_net(&mut self, name: String, driver: Driver) -> NetId {
        let id = NetId::new(self.nets.len());
        self.nets.push(Net {
            name,
            driver,
            sinks: Vec::new(),
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Library;

    #[test]
    fn wide_gate_decomposes_into_tree() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("wide", &lib);
        let ins: Vec<_> = (0..9).map(|i| b.input(format!("i{i}"))).collect();
        let y = b.gate(GateFn::And, &ins).unwrap();
        b.output("y", y);
        let n = b.finish().unwrap();
        n.validate().unwrap();
        // 9 inputs at max fanin 4: 4+4+1 -> 3 -> 1, so 3 gates total.
        assert_eq!(n.num_cells(), 3);
    }

    #[test]
    fn wide_nand_gets_inverter_cap() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("widenand", &lib);
        let ins: Vec<_> = (0..6).map(|i| b.input(format!("i{i}"))).collect();
        let y = b.gate(GateFn::Nand, &ins).unwrap();
        b.output("y", y);
        let n = b.finish().unwrap();
        let inv_count = n
            .cells()
            .filter(|(_, c)| n.library().cell(c.lib).function == GateFn::Inv)
            .count();
        assert_eq!(inv_count, 1);
    }

    #[test]
    fn single_input_and_becomes_buffer() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("degen", &lib);
        let a = b.input("a");
        let y = b.gate(GateFn::And, &[a]).unwrap();
        b.output("y", y);
        let n = b.finish().unwrap();
        assert_eq!(n.num_cells(), 1);
        assert_eq!(
            n.library().cell(n.cell(crate::CellId::new(0)).lib).function,
            GateFn::Buf
        );
    }

    #[test]
    fn duplicate_input_rejected() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("dup", &lib);
        b.input("a");
        assert!(b.try_input("a").is_err());
    }

    #[test]
    fn empty_gate_rejected() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("e", &lib);
        assert!(b.gate(GateFn::And, &[]).is_err());
    }

    #[test]
    fn unary_with_two_inputs_rejected() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("e", &lib);
        let a = b.input("a");
        let c = b.input("b");
        assert!(b.gate(GateFn::Inv, &[a, c]).is_err());
    }

    #[test]
    fn lib_gate_checks_pins() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("lg", &lib);
        let a = b.input("a");
        assert!(b.lib_gate("NAND2_X1", &[a]).is_err());
        assert!(b.lib_gate("NO_SUCH", &[a]).is_err());
        let c = b.input("b");
        assert!(b.lib_gate("NAND2_X1", &[a, c]).is_ok());
    }
}
