//! Typed index handles into a [`crate::Netlist`] and [`crate::Library`].

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates a handle from a raw index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the raw index this handle wraps.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Handle to a standard cell instance in a [`crate::Netlist`].
    CellId,
    "c"
);
define_id!(
    /// Handle to a net (a driver with zero or more sinks) in a [`crate::Netlist`].
    NetId,
    "n"
);
define_id!(
    /// Handle to a primary input or output port of a [`crate::Netlist`].
    PortId,
    "p"
);
define_id!(
    /// Handle to a cell definition inside a [`crate::Library`].
    LibCellId,
    "L"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = CellId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(CellId::new(3).to_string(), "c3");
        assert_eq!(NetId::new(9).to_string(), "n9");
        assert_eq!(PortId::new(0).to_string(), "p0");
        assert_eq!(LibCellId::new(7).to_string(), "L7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NetId::new(1) < NetId::new(2));
        assert_eq!(NetId::new(5), NetId::new(5));
    }
}
