//! Structural-Verilog subset reader/writer.
//!
//! Covers the netlists the superblue→Verilog conversion scripts emit: a
//! single module with `input`/`output`/`wire` declarations and named-port
//! standard-cell instances. Input pins are named `A`, `B`, `C`, `D` (in pin
//! order) and the output pin `Z`:
//!
//! ```text
//! module top (a, b, y);
//!   input a, b;
//!   output y;
//!   wire w0;
//!   NAND2_X1 U0 (.A(a), .B(b), .Z(w0));
//!   INV_X1 U1 (.A(w0), .Z(y));
//! endmodule
//! ```

use crate::graph::topo_order;
use crate::library::Library;
use crate::netlist::Netlist;
use crate::{NetlistBuilder, NetlistError};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

const INPUT_PIN_NAMES: [&str; 4] = ["A", "B", "C", "D"];

/// Writes `netlist` as structural Verilog (re-parsable by
/// [`parse_verilog`]).
pub fn write_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let ports: Vec<&str> = netlist
        .input_ports()
        .iter()
        .chain(netlist.output_ports())
        .map(|p| p.name.as_str())
        .collect();
    let _ = writeln!(
        out,
        "module {} ({});",
        sanitize(netlist.name()),
        ports.join(", ")
    );
    for p in netlist.input_ports() {
        let _ = writeln!(out, "  input {};", p.name);
    }
    for p in netlist.output_ports() {
        let _ = writeln!(out, "  output {};", p.name);
    }

    // Label nets: input ports keep their name; the first output on a net
    // labels it unless an input already did. Aliased outputs get explicit
    // BUF_X1 instances at the end.
    let mut labels: HashMap<usize, String> = HashMap::new();
    for p in netlist.input_ports() {
        labels.insert(p.net.index(), p.name.clone());
    }
    for p in netlist.output_ports() {
        labels
            .entry(p.net.index())
            .or_insert_with(|| p.name.clone());
    }
    let mut wires = Vec::new();
    for (id, net) in netlist.nets() {
        if let std::collections::hash_map::Entry::Vacant(slot) = labels.entry(id.index()) {
            slot.insert(net.name.clone());
            if net.degree() > 1 {
                wires.push(net.name.clone());
            }
        }
    }
    for chunk in wires.chunks(8) {
        let _ = writeln!(out, "  wire {};", chunk.join(", "));
    }
    let order = topo_order(netlist).expect("netlists are acyclic by construction");
    for c in order {
        let cell = netlist.cell(c);
        let lib = netlist.library().cell(cell.lib);
        let mut pins = Vec::with_capacity(cell.inputs().len() + 1);
        for (i, &net) in cell.inputs().iter().enumerate() {
            pins.push(format!(".{}({})", INPUT_PIN_NAMES[i], labels[&net.index()]));
        }
        pins.push(format!(".Z({})", labels[&cell.output().index()]));
        let _ = writeln!(out, "  {} {} ({});", lib.name, cell.name, pins.join(", "));
    }
    for (k, p) in netlist.output_ports().iter().enumerate() {
        let canonical = &labels[&p.net.index()];
        if canonical != &p.name {
            let _ = writeln!(out, "  BUF_X1 UALIAS{k} (.A({canonical}), .Z({}));", p.name);
        }
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Parses the structural-Verilog subset into a netlist mapped onto
/// `library`.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax problems, plus the usual
/// construction errors for unknown cells/signals and loops.
pub fn parse_verilog(text: &str, library: &Library) -> Result<Netlist, NetlistError> {
    // Strip comments, then split into `;`-terminated statements (the module
    // header ends with `;` too). Track line numbers per statement start.
    let mut cleaned = String::with_capacity(text.len());
    for line in text.lines() {
        let line = line.split("//").next().unwrap_or("");
        cleaned.push_str(line);
        cleaned.push('\n');
    }

    let mut statements: Vec<(usize, String)> = Vec::new();
    let mut current = String::new();
    let mut start_line = 1usize;
    let mut line_no = 1usize;
    for ch in cleaned.chars() {
        if ch == '\n' {
            line_no += 1;
        }
        if ch == ';' {
            statements.push((start_line, current.trim().to_string()));
            current.clear();
            start_line = line_no;
        } else {
            current.push(ch);
        }
    }
    let tail = current.trim();
    if !tail.is_empty() && tail != "endmodule" {
        return Err(NetlistError::Parse {
            line: start_line,
            message: format!("unterminated statement `{}`", truncate(tail)),
        });
    }

    let mut name = String::from("top");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    #[allow(clippy::type_complexity)]
    let mut instances: Vec<(usize, String, String, Vec<(String, String)>)> = Vec::new();

    for (line, stmt) in &statements {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("module") {
            let rest = rest.trim();
            let open = rest.find('(');
            name = rest[..open.unwrap_or(rest.len())].trim().to_string();
        } else if let Some(rest) = stmt.strip_prefix("input") {
            inputs.extend(split_names(rest));
        } else if let Some(rest) = stmt.strip_prefix("output") {
            outputs.extend(split_names(rest));
        } else if stmt.starts_with("wire") {
            // Wire declarations carry no connectivity; instances define it.
        } else if stmt == "endmodule" {
            // Ignore.
        } else {
            // Cell instance: `LIB INST ( .PIN(net), ... )`.
            let open = stmt.find('(').ok_or_else(|| NetlistError::Parse {
                line: *line,
                message: format!("expected instance, got `{}`", truncate(stmt)),
            })?;
            let head: Vec<&str> = stmt[..open].split_whitespace().collect();
            if head.len() != 2 {
                return Err(NetlistError::Parse {
                    line: *line,
                    message: format!("bad instance header `{}`", truncate(&stmt[..open])),
                });
            }
            let body = stmt[open + 1..].trim_end();
            let body = body.strip_suffix(')').ok_or_else(|| NetlistError::Parse {
                line: *line,
                message: "missing `)` on instance".into(),
            })?;
            let mut pins = Vec::new();
            for conn in body.split(',') {
                let conn = conn.trim();
                if conn.is_empty() {
                    continue;
                }
                let conn = conn.strip_prefix('.').ok_or_else(|| NetlistError::Parse {
                    line: *line,
                    message: format!("expected `.PIN(net)`, got `{}`", truncate(conn)),
                })?;
                let p_open = conn.find('(').ok_or_else(|| NetlistError::Parse {
                    line: *line,
                    message: "missing `(` in pin connection".into(),
                })?;
                let pin = conn[..p_open].trim().to_string();
                let net = conn[p_open + 1..]
                    .trim_end()
                    .strip_suffix(')')
                    .ok_or_else(|| NetlistError::Parse {
                        line: *line,
                        message: "missing `)` in pin connection".into(),
                    })?
                    .trim()
                    .to_string();
                pins.push((pin, net));
            }
            instances.push((*line, head[0].to_string(), head[1].to_string(), pins));
        }
    }

    let mut builder = NetlistBuilder::new(name, library);
    for i in &inputs {
        builder.try_input(i.clone()).map_err(|e| wrap(1, e))?;
    }
    let output_set: HashSet<&String> = outputs.iter().collect();
    let _ = output_set; // outputs resolved after instances

    // Instances may be out of dependency order; resolve iteratively.
    let mut pending = instances;
    while !pending.is_empty() {
        let mut progressed = false;
        let mut still = Vec::with_capacity(pending.len());
        for (line, lib_name, inst_name, pins) in pending {
            let out_pin = pins.iter().find(|(p, _)| p == "Z" || p == "ZN" || p == "Y");
            let out_net_name = match out_pin {
                Some((_, n)) => n.clone(),
                None => {
                    return Err(NetlistError::Parse {
                        line,
                        message: format!("instance `{inst_name}` has no output pin"),
                    })
                }
            };
            let mut in_nets = Vec::new();
            let mut ordered: Vec<&(String, String)> = pins
                .iter()
                .filter(|(p, _)| INPUT_PIN_NAMES.contains(&p.as_str()))
                .collect();
            ordered.sort_by(|a, b| a.0.cmp(&b.0));
            let resolved = ordered
                .iter()
                .all(|(_, net)| builder.net_by_name(net).is_ok());
            if !resolved {
                still.push((line, lib_name, inst_name, pins));
                continue;
            }
            for (_, net) in ordered {
                in_nets.push(builder.net_by_name(net).expect("checked above"));
            }
            let out = builder
                .lib_gate(&lib_name, &in_nets)
                .map_err(|e| wrap(line, e))?;
            builder
                .name_net(out_net_name, out)
                .map_err(|e| wrap(line, e))?;
            progressed = true;
        }
        if !progressed {
            let (line, _, inst, pins) = &still[0];
            let missing = pins
                .iter()
                .filter(|(p, _)| INPUT_PIN_NAMES.contains(&p.as_str()))
                .find(|(_, n)| builder.net_by_name(n).is_err())
                .map(|(_, n)| n.clone())
                .unwrap_or_else(|| inst.clone());
            let cyclic = still
                .iter()
                .any(|(_, _, _, ps)| ps.iter().any(|(p, n)| p.starts_with('Z') && *n == missing));
            return Err(if cyclic {
                NetlistError::CombinationalLoop(missing)
            } else {
                wrap(*line, NetlistError::UnknownSignal(missing))
            });
        }
        pending = still;
    }

    for o in outputs {
        let net = builder.net_by_name(&o).map_err(|e| wrap(1, e))?;
        builder.output(o, net);
    }
    builder.finish()
}

fn split_names(rest: &str) -> Vec<String> {
    rest.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn truncate(s: &str) -> String {
    if s.len() > 40 {
        format!("{}…", &s[..40])
    } else {
        s.to_string()
    }
}

fn wrap(line: usize, err: NetlistError) -> NetlistError {
    match err {
        e @ NetlistError::Parse { .. } => e,
        other => NetlistError::Parse {
            line,
            message: other.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::bench::{parse_bench, C17_BENCH};
    use crate::Library;

    #[test]
    fn roundtrip_c17() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let v = write_verilog(&n);
        let n2 = parse_verilog(&v, &lib).unwrap();
        assert_eq!(n2.num_cells(), n.num_cells());
        assert_eq!(n2.input_ports().len(), 5);
        assert_eq!(n2.output_ports().len(), 2);
        n2.validate().unwrap();
    }

    #[test]
    fn parses_handwritten_module() {
        let lib = Library::nangate45();
        let text = "\
// half adder
module ha (a, b, s, c);
  input a, b;
  output s, c;
  XOR2_X1 U0 (.A(a), .B(b), .Z(s));
  AND2_X1 U1 (.A(a), .B(b), .Z(c));
endmodule
";
        let n = parse_verilog(text, &lib).unwrap();
        assert_eq!(n.name(), "ha");
        assert_eq!(n.num_cells(), 2);
        n.validate().unwrap();
    }

    #[test]
    fn out_of_order_instances_resolve() {
        let lib = Library::nangate45();
        let text = "\
module m (a, y);
  input a;
  output y;
  wire w;
  INV_X1 U1 (.A(w), .Z(y));
  BUF_X1 U0 (.A(a), .Z(w));
endmodule
";
        let n = parse_verilog(text, &lib).unwrap();
        assert_eq!(n.num_cells(), 2);
    }

    #[test]
    fn unknown_cell_is_error() {
        let lib = Library::nangate45();
        let text = "module m (a, y); input a; output y; MAGIC U0 (.A(a), .Z(y)); endmodule";
        assert!(parse_verilog(text, &lib).is_err());
    }

    #[test]
    fn missing_output_pin_is_error() {
        let lib = Library::nangate45();
        let text = "module m (a, y); input a; output y; INV_X1 U0 (.A(a)); endmodule";
        let err = parse_verilog(text, &lib).unwrap_err();
        assert!(err.to_string().contains("no output pin"), "{err}");
    }

    #[test]
    fn cyclic_instances_detected() {
        let lib = Library::nangate45();
        let text = "\
module m (a, y);
  input a;
  output y;
  wire w1, w2;
  AND2_X1 U0 (.A(a), .B(w2), .Z(w1));
  INV_X1 U1 (.A(w1), .Z(w2));
  BUF_X1 U2 (.A(w1), .Z(y));
endmodule
";
        let err = parse_verilog(text, &lib).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop(_)), "{err}");
    }
}
