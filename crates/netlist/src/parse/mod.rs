//! Netlist readers and writers.
//!
//! Two formats are supported, matching the paper's tool flow:
//!
//! * [`mod@bench`] — the ISCAS-85 `.bench` format the benchmark suite is
//!   distributed in (`INPUT(..)`, `OUTPUT(..)`, `g = NAND(a, b)`).
//! * [`verilog`] — a structural-Verilog subset equivalent to what the
//!   superblue conversion scripts of Kahng et al. emit: one module,
//!   `input`/`output`/`wire` declarations and named-port cell instances.

pub mod bench;
pub mod verilog;

pub use bench::{parse_bench, write_bench};
pub use verilog::{parse_verilog, write_verilog};
