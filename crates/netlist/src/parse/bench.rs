//! ISCAS-85 `.bench` format reader/writer.
//!
//! The format, as distributed with the ISCAS-85 suite:
//!
//! ```text
//! # c17 benchmark
//! INPUT(G1)
//! OUTPUT(G22)
//! G10 = NAND(G1, G3)
//! G22 = NOT(G10)
//! ```
//!
//! Gates may reference signals defined further down the file; the parser
//! resolves definitions in dependency order. Wide gates are decomposed to
//! library fanins by [`crate::NetlistBuilder`].

use crate::graph::topo_order;
use crate::library::Library;
use crate::netlist::{Driver, Netlist};
use crate::{NetlistBuilder, NetlistError};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

#[derive(Debug)]
struct GateDef {
    line: usize,
    output: String,
    function: String,
    inputs: Vec<String>,
}

/// Parses `.bench` text into a netlist mapped onto `library`.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax problems,
/// [`NetlistError::UnknownSignal`] for dangling references and
/// [`NetlistError::CombinationalLoop`] for cyclic definitions.
pub fn parse_bench(name: &str, text: &str, library: &Library) -> Result<Netlist, NetlistError> {
    let mut builder = NetlistBuilder::new(name, library);
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut gates: Vec<GateDef> = Vec::new();
    let mut defined: HashSet<String> = HashSet::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = strip_call(line, "INPUT") {
            builder
                .try_input(inner.trim())
                .map_err(|e| at(line_no, e))?;
            defined.insert(inner.trim().to_string());
        } else if let Some(inner) = strip_call(line, "OUTPUT") {
            outputs.push((line_no, inner.trim().to_string()));
        } else if let Some(eq) = line.find('=') {
            let output = line[..eq].trim().to_string();
            let rhs = line[eq + 1..].trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| parse_err(line_no, "missing `(`"))?;
            if !rhs.ends_with(')') {
                return Err(parse_err(line_no, "missing `)`"));
            }
            let function = rhs[..open].trim().to_string();
            let args = &rhs[open + 1..rhs.len() - 1];
            let inputs: Vec<String> = args
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if inputs.is_empty() {
                return Err(parse_err(line_no, "gate with no inputs"));
            }
            if defined.contains(&output) {
                return Err(at(line_no, NetlistError::DuplicateName(output)));
            }
            defined.insert(output.clone());
            gates.push(GateDef {
                line: line_no,
                output,
                function,
                inputs,
            });
        } else {
            return Err(parse_err(
                line_no,
                format!("unrecognized statement `{line}`"),
            ));
        }
    }

    // Resolve gates in dependency order (definitions may be out of order).
    let mut pending: Vec<GateDef> = gates;
    while !pending.is_empty() {
        let mut progressed = false;
        let mut still_pending = Vec::with_capacity(pending.len());
        for def in pending {
            let resolved: Option<Vec<_>> = def
                .inputs
                .iter()
                .map(|s| builder.net_by_name(s).ok())
                .collect();
            match resolved {
                Some(nets) => {
                    let function = crate::GateFn::from_bench_name(&def.function)
                        .map_err(|e| at(def.line, e))?;
                    let out = builder.gate(function, &nets).map_err(|e| at(def.line, e))?;
                    builder
                        .name_net(def.output.clone(), out)
                        .map_err(|e| at(def.line, e))?;
                    progressed = true;
                }
                None => still_pending.push(def),
            }
        }
        if !progressed {
            let def = &still_pending[0];
            let missing = def
                .inputs
                .iter()
                .find(|s| builder.net_by_name(s).is_err())
                .cloned()
                .unwrap_or_else(|| def.output.clone());
            // Distinguish a truly undefined signal from a cyclic definition.
            let is_defined_somewhere = still_pending.iter().any(|g| g.output == missing);
            return Err(if is_defined_somewhere {
                NetlistError::CombinationalLoop(missing)
            } else {
                at(def.line, NetlistError::UnknownSignal(missing))
            });
        }
        pending = still_pending;
    }

    for (line_no, out_name) in outputs {
        let net = builder.net_by_name(&out_name).map_err(|e| at(line_no, e))?;
        builder.output(out_name, net);
    }
    builder.finish()
}

/// Writes a netlist back to `.bench` text.
///
/// Decomposed wide gates are written as the decomposed tree; the result is
/// functionally identical to the source and re-parsable by [`parse_bench`].
pub fn write_bench(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} — written by sm-netlist", netlist.name());
    for port in netlist.input_ports() {
        let _ = writeln!(out, "INPUT({})", port.name);
    }
    for port in netlist.output_ports() {
        let _ = writeln!(out, "OUTPUT({})", port.name);
    }
    // Primary-output nets take the port name; input nets keep the input
    // name. An output sharing a net with an input (or another output)
    // cannot carry the defining label, so it gets an explicit BUFF alias
    // at the end — the standard .bench idiom for port aliases.
    let mut net_label: HashMap<usize, String> = HashMap::new();
    for port in netlist.input_ports() {
        net_label.insert(port.net.index(), port.name.clone());
    }
    for port in netlist.output_ports() {
        net_label
            .entry(port.net.index())
            .or_insert_with(|| port.name.clone());
    }
    let label = |net: crate::NetId, labels: &HashMap<usize, String>| -> String {
        labels
            .get(&net.index())
            .cloned()
            .unwrap_or_else(|| netlist.net(net).name.clone())
    };
    let order = topo_order(netlist).expect("netlists are acyclic by construction");
    for c in order {
        let cell = netlist.cell(c);
        let function = netlist.library().cell(cell.lib).function;
        let args: Vec<String> = cell
            .inputs()
            .iter()
            .map(|&n| label(n, &net_label))
            .collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            label(cell.output(), &net_label),
            function.bench_name(),
            args.join(", ")
        );
    }
    for port in netlist.output_ports() {
        let canonical = label(port.net, &net_label);
        if canonical != port.name {
            let _ = writeln!(out, "{} = BUFF({})", port.name, canonical);
        }
    }
    out
}

/// The real ISCAS-85 c17 circuit, embedded as ground truth for tests and
/// the quickstart example.
pub const C17_BENCH: &str = "\
# c17 — smallest ISCAS-85 benchmark (6 NAND2 gates)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

fn parse_err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        message: message.into(),
    }
}

fn at(line: usize, err: NetlistError) -> NetlistError {
    match err {
        e @ NetlistError::Parse { .. } => e,
        other => NetlistError::Parse {
            line,
            message: other.to_string(),
        },
    }
}

/// `true` if `netlist`'s net is driven by a primary input (helper shared by
/// writers).
#[allow(dead_code)]
fn is_pi_net(netlist: &Netlist, net: crate::NetId) -> bool {
    matches!(netlist.net(net).driver(), Driver::Port(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Library;

    #[test]
    fn parse_c17() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        assert_eq!(n.num_cells(), 6);
        assert_eq!(n.input_ports().len(), 5);
        assert_eq!(n.output_ports().len(), 2);
        n.validate().unwrap();
    }

    #[test]
    fn out_of_order_definitions_resolve() {
        let lib = Library::nangate45();
        let text = "\
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = AND(a, a)
";
        let n = parse_bench("ooo", text, &lib).unwrap();
        assert_eq!(n.num_cells(), 2);
    }

    #[test]
    fn cyclic_definition_reported_as_loop() {
        let lib = Library::nangate45();
        let text = "\
INPUT(a)
OUTPUT(y)
y = AND(a, z)
z = NOT(y)
";
        let err = parse_bench("cyc", text, &lib).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop(_)), "{err}");
    }

    #[test]
    fn undefined_signal_reported() {
        let lib = Library::nangate45();
        let text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        let err = parse_bench("bad", text, &lib).unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let lib = Library::nangate45();
        let err = parse_bench("bad", "INPUT(a)\ny = AND(a, a\n", &lib).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let lib = Library::nangate45();
        let n = parse_bench("c17", C17_BENCH, &lib).unwrap();
        let text = write_bench(&n);
        let n2 = parse_bench("c17rt", &text, &lib).unwrap();
        assert_eq!(n2.num_cells(), n.num_cells());
        assert_eq!(n2.input_ports().len(), n.input_ports().len());
        assert_eq!(n2.output_ports().len(), n.output_ports().len());
        n2.validate().unwrap();
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let lib = Library::nangate45();
        let text = "# header\n\nINPUT(a)  # trailing comment\nOUTPUT(y)\ny = NOT(a)\n";
        let n = parse_bench("c", text, &lib).unwrap();
        assert_eq!(n.num_cells(), 1);
    }

    #[test]
    fn duplicate_gate_definition_rejected() {
        let lib = Library::nangate45();
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n";
        assert!(parse_bench("dup", text, &lib).is_err());
    }
}
