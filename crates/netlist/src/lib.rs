//! Gate-level netlist core for the split-manufacturing reproduction.
//!
//! This crate provides the data model every other crate builds on:
//!
//! * [`Netlist`] — a single-output-per-cell, combinational gate-level
//!   netlist with typed [`CellId`]/[`NetId`] handles and cheap connectivity
//!   edits (the randomization defense rewires driver/sink pairs in place).
//! * [`Library`] — a Nangate-45-like standard-cell library carrying the
//!   area, capacitance, drive-resistance, delay and leakage data used by the
//!   placement, timing and power engines.
//! * [`parse`] — readers/writers for the ISCAS-85 `.bench` format and a
//!   structural-Verilog subset, so the real benchmark files can be used
//!   whenever they are available.
//! * [`graph`] — topological ordering, levelization, combinational-loop
//!   detection and the `would_create_cycle` query at the heart of the
//!   loop-free randomizer.
//!
//! # Example
//!
//! ```
//! use sm_netlist::{Library, NetlistBuilder, GateFn};
//!
//! # fn main() -> Result<(), sm_netlist::NetlistError> {
//! let lib = Library::nangate45();
//! let mut b = NetlistBuilder::new("half_adder", &lib);
//! let a = b.input("a");
//! let c = b.input("b");
//! let s = b.gate(GateFn::Xor, &[a, c])?;
//! let carry = b.gate(GateFn::And, &[a, c])?;
//! b.output("sum", s);
//! b.output("carry", carry);
//! let netlist = b.finish()?;
//! assert_eq!(netlist.num_cells(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod codec;
mod error;
mod id;
mod library;
mod netlist;

pub mod graph;
pub mod index;
pub mod parse;
pub mod stats;

pub use builder::NetlistBuilder;
pub use error::NetlistError;
pub use id::{CellId, LibCellId, NetId, PortId};
pub use index::ConnectivityIndex;
pub use library::{GateFn, LibCell, Library};
pub use netlist::{Cell, Driver, Net, Netlist, Port, Sink};
