//! The industrial-scale scenario: protect a (scaled) IBM superblue design
//! with correction cells in M8 and compare against naive lifting — the
//! workload behind Tables 1–3 and Figs. 4–5 of the paper.
//!
//! ```sh
//! cargo run --release --example superblue_flow [superblue18] [scale] [seed]
//! ```

use split_manufacturing::benchgen::superblue;
use split_manufacturing::core::baselines::{naive_lifting, original_layout};
use split_manufacturing::layout::analysis::{distance_stats, driver_sink_distances_um};
use split_manufacturing::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("superblue18");
    let scale: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(150);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let profile = SuperblueProfile::by_name(name).unwrap_or_else(SuperblueProfile::superblue18);
    let design = superblue::generate(&profile, scale, seed);
    println!(
        "{} @ 1/{}: {} cells, {} nets ({} nets in the real design)",
        profile.name,
        scale,
        design.num_cells(),
        design.num_nets(),
        profile.nets
    );

    let config = FlowConfig {
        utilization: profile.utilization(),
        ..FlowConfig::superblue_default(seed)
    };
    let protected = protect(&design, &config);
    let nets = protected.protected_nets();
    println!(
        "protected {} nets through {} M8 correction cells; PPA overhead: {}",
        nets.len(),
        protected.correction_cells.len(),
        protected.ppa_overhead
    );

    // Distances between truly connected gates (Table 1's story).
    let original = original_layout(&design, profile.utilization(), seed);
    let lifted = naive_lifting(
        &design,
        &nets,
        config.lift_layer,
        profile.utilization(),
        seed,
    );
    let d_orig = distance_stats(driver_sink_distances_um(
        &design,
        &original.placement,
        nets.iter().copied(),
    ));
    let d_prop = distance_stats(driver_sink_distances_um(
        &protected.restored,
        &protected.placement,
        nets.iter().copied(),
    ));
    println!(
        "driver–sink distances (µm): original mean {:.2} / median {:.2}; proposed mean {:.2} / median {:.2} ({:.0}× blow-up)",
        d_orig.mean,
        d_orig.median,
        d_prop.mean,
        d_prop.median,
        d_prop.mean / d_orig.mean.max(1e-9)
    );

    // Via migration to the upper layers (Table 2's story).
    let vo = original.routing.via_counts();
    let vl = lifted.routing.via_counts();
    let vp = protected.restored_routing.via_counts();
    println!("vias V67/V78/V89 —");
    println!(
        "  original: {} / {} / {}",
        vo.between(6),
        vo.between(7),
        vo.between(8)
    );
    println!(
        "  lifted:   {} / {} / {}",
        vl.between(6),
        vl.between(7),
        vl.between(8)
    );
    println!(
        "  proposed: {} / {} / {}",
        vp.between(6),
        vp.between(7),
        vp.between(8)
    );
}
