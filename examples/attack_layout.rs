//! Play the attacker: run both attack families against an *unprotected*
//! layout and watch split manufacturing fail without the defense.
//!
//! ```sh
//! cargo run --release --example attack_layout [c880] [seed]
//! ```

use split_manufacturing::attacks::solution_space;
use split_manufacturing::benchgen::iscas;
use split_manufacturing::core::baselines::original_layout;
use split_manufacturing::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("c880");
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let profile = IscasProfile::by_name(name).unwrap_or_else(IscasProfile::c880);
    let design = iscas::generate(&profile, seed);
    let layout = original_layout(&design, 0.7, seed);
    println!(
        "{}: {} gates placed on {:.0} µm² (no protection applied)",
        profile.name,
        design.num_cells(),
        layout.floorplan.die_area_um2()
    );

    for split_layer in [3u8, 4, 5] {
        let split = split_layout(&design, &layout.placement, &layout.routing, split_layer);
        let out = network_flow_attack(
            &design,
            &design,
            &layout.placement,
            &split,
            &ProximityConfig::default(),
        );
        println!(
            "network-flow @ M{split_layer}: {} cut nets → CCR {:.1}%  OER {:.1}%  HD {:.1}%",
            split.cut_nets,
            out.ccr * 100.0,
            out.metrics.oer * 100.0,
            out.metrics.hd * 100.0
        );

        let report = crouting_attack(&design, &split, &CroutingConfig::default());
        let widest = report.boxes.last().expect("boxes configured");
        println!(
            "crouting     @ M{split_layer}: {} vpins, E[LS]@45 = {:.2}, match-in-list {:.0}%",
            report.num_vpins,
            widest.expected_list_size,
            widest.match_in_list * 100.0
        );
        // Solution-space framing from the paper's footnote 2.
        let n = split.feol.sink_vpins().len() as u64;
        println!(
            "             solution space: 10^{:.0} netlists unconstrained → 10^{:.0} after crouting",
            solution_space::log10_factorial(n),
            solution_space::log10_residual_space(n, widest.expected_list_size)
        );
    }
}
