//! Protect a full ISCAS-85-class benchmark and report the paper's key
//! security metrics (the Table 4 "proposed" row for one circuit).
//!
//! ```sh
//! cargo run --release --example protect_iscas [c432|c880|…] [seed]
//! ```

use split_manufacturing::attacks::ccr_over_connections;
use split_manufacturing::benchgen::iscas;
use split_manufacturing::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("c432");
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let profile = IscasProfile::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`, defaulting to c432");
        IscasProfile::c432()
    });
    let design = iscas::generate(&profile, seed);
    println!(
        "{}: {} gates, {} PI, {} PO, depth target {}",
        profile.name, profile.gates, profile.inputs, profile.outputs, profile.depth
    );

    let protected = protect(&design, &FlowConfig::iscas_default(seed));
    println!(
        "randomized {} nets via {} swaps (OER {:.1}%)",
        protected.protected_nets().len(),
        protected.randomization.swaps.len(),
        protected.randomization.oer_achieved * 100.0
    );
    println!(
        "PPA overhead vs unprotected baseline: {}",
        protected.ppa_overhead
    );

    // Attack at each split layer the paper averages over.
    let swapped = protected.randomization.swapped_connections();
    let mut avg = (0.0, 0.0, 0.0);
    for split_layer in [3u8, 4, 5] {
        let split = split_layout(
            &protected.randomization.erroneous,
            &protected.placement,
            &protected.feol_routing,
            split_layer,
        );
        let out = network_flow_attack(
            &design,
            &protected.randomization.erroneous,
            &protected.placement,
            &split,
            &ProximityConfig::default(),
        );
        let ccr = ccr_over_connections(&split, &out.pairs, &swapped);
        println!(
            "split M{split_layer}: {} cut nets, CCR(protected) {:.1}%, OER {:.1}%, HD {:.1}%",
            split.cut_nets,
            ccr * 100.0,
            out.metrics.oer * 100.0,
            out.metrics.hd * 100.0
        );
        avg.0 += ccr / 3.0;
        avg.1 += out.metrics.oer / 3.0;
        avg.2 += out.metrics.hd / 3.0;
    }
    println!(
        "averaged (paper's Table 4 row): CCR {:.1}%  OER {:.1}%  HD {:.1}%  — paper: 0 / 99.9 / ~40",
        avg.0 * 100.0,
        avg.1 * 100.0,
        avg.2 * 100.0
    );
}
