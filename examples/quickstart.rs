//! Quickstart: protect the c17 benchmark and attack its FEOL.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use split_manufacturing::attacks::ccr_over_connections;
use split_manufacturing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The real ISCAS-85 c17 netlist ships with the crate.
    let lib = Library::nangate45();
    let design = parse_bench("c17", C17_BENCH, &lib)?;
    println!(
        "design: {} — {} gates, {} inputs, {} outputs",
        design.name(),
        design.num_cells(),
        design.input_ports().len(),
        design.output_ports().len()
    );

    // Protect it: randomize until OER ≈ 100%, place & route the erroneous
    // netlist, embed correction cells in M6, restore in the BEOL.
    let protected = protect(&design, &FlowConfig::iscas_default(42));
    println!(
        "randomization: {} swaps, OER {:.1}%, HD {:.1}%",
        protected.randomization.swaps.len(),
        protected.randomization.oer_achieved * 100.0,
        protected.randomization.hd_achieved * 100.0
    );
    println!(
        "correction cells: {} (pins in M6)",
        protected.correction_cells.len()
    );
    println!("PPA overhead: {}", protected.ppa_overhead);

    // The restored netlist is functionally identical to the original.
    let verdict = split_manufacturing::sim::equiv::check(&design, &protected.restored, 100_000)?;
    println!("formal equivalence of restored netlist: {verdict:?}");

    // Attack the FEOL an untrusted fab would see (split after M4).
    let split = split_layout(
        &protected.randomization.erroneous,
        &protected.placement,
        &protected.feol_routing,
        4,
    );
    let outcome = network_flow_attack(
        &design,
        &protected.randomization.erroneous,
        &protected.placement,
        &split,
        &ProximityConfig::default(),
    );
    let swapped = protected.randomization.swapped_connections();
    let ccr_protected = ccr_over_connections(&split, &outcome.pairs, &swapped);
    println!(
        "network-flow attack: CCR over randomized nets {:.1}%, OER {:.1}%, HD {:.1}%",
        ccr_protected * 100.0,
        outcome.metrics.oer * 100.0,
        outcome.metrics.hd * 100.0
    );
    Ok(())
}
