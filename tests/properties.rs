//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;
use rand::SeedableRng;
use split_manufacturing::core::{randomize, RandomizeConfig};
use split_manufacturing::layout::{Floorplan, PlacementEngine, RouteOptions, Router, Technology};
use split_manufacturing::netlist::graph::topo_order;
use split_manufacturing::netlist::{GateFn, Library, NetId, Netlist, NetlistBuilder};
use split_manufacturing::sim::{security_metrics, PatternSource, Simulator};

/// Builds a random layered circuit from a proptest-driven recipe.
fn arbitrary_netlist(inputs: usize, layers: Vec<Vec<(u8, u8, u8)>>) -> Netlist {
    let lib = Library::nangate45();
    let mut b = NetlistBuilder::new("prop", &lib);
    let mut signals: Vec<NetId> = (0..inputs.max(2))
        .map(|i| b.input(format!("i{i}")))
        .collect();
    for layer in layers {
        let mut next = Vec::new();
        for (f, a, c) in layer {
            let fun = match f % 8 {
                0 => GateFn::Buf,
                1 => GateFn::Inv,
                2 => GateFn::And,
                3 => GateFn::Nand,
                4 => GateFn::Or,
                5 => GateFn::Nor,
                6 => GateFn::Xor,
                _ => GateFn::Xnor,
            };
            let x = signals[a as usize % signals.len()];
            let y = signals[c as usize % signals.len()];
            let out = if fun.is_unary() {
                b.gate(fun, &[x]).expect("unary gate")
            } else if x == y {
                b.gate(GateFn::Inv, &[x]).expect("degenerate pair")
            } else {
                b.gate(fun, &[x, y]).expect("binary gate")
            };
            next.push(out);
        }
        signals.extend(next);
    }
    let out = *signals.last().expect("at least the inputs");
    b.output("y", out);
    b.output("z", signals[signals.len() / 2]);
    b.finish().expect("layered construction is acyclic")
}

fn netlist_strategy() -> impl Strategy<Value = Netlist> {
    (
        2usize..6,
        proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..6),
            1..5,
        ),
    )
        .prop_map(|(inputs, layers)| arbitrary_netlist(inputs, layers))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomization must never create a combinational loop and must
    /// restore to an exact functional copy.
    #[test]
    fn randomize_preserves_acyclicity_and_restores(netlist in netlist_strategy(), seed in 0u64..1000) {
        let r = randomize(&netlist, &RandomizeConfig::new(seed));
        prop_assert!(topo_order(&r.erroneous).is_ok());
        r.erroneous.validate().expect("consistent erroneous netlist");
        let restored = r.restore();
        restored.validate().expect("consistent restored netlist");
        // Exhaustive equivalence via simulation (≤ 5 inputs ⇒ ≤ 32 patterns).
        let patterns = PatternSource::exhaustive(&netlist);
        let m = security_metrics(&netlist, &restored, &patterns).expect("same ports");
        prop_assert_eq!(m.oer, 0.0);
    }

    /// The placer always produces a legal placement, and routing covers
    /// every multi-terminal net.
    #[test]
    fn place_and_route_always_legal(netlist in netlist_strategy(), seed in 0u64..1000) {
        let tech = Technology::nangate45_10lm();
        let fp = Floorplan::for_netlist(&netlist, &tech, 0.6);
        let pl = PlacementEngine::new(seed).place(&netlist, &fp);
        prop_assert!(pl.is_legal(&fp));
        let routes = Router::new(&tech).route(&netlist, &pl, &fp, &RouteOptions::default());
        for (id, net) in netlist.nets() {
            if net.degree() >= 2 {
                prop_assert!(routes.net_max_layer(id) >= 1, "net {} unrouted", id);
            }
        }
        // Via accounting is self-consistent.
        let mut manual = 0u64;
        for (id, _) in netlist.nets() {
            for v in &routes.route(id).vias {
                manual += (v.to_layer - v.from_layer) as u64;
            }
        }
        prop_assert_eq!(manual, routes.via_counts().total());
    }

    /// Simulation is deterministic and word/single evaluation agree.
    #[test]
    fn simulation_lanes_agree(netlist in netlist_strategy(), seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let patterns = PatternSource::random(&netlist, 64, &mut rng);
        let mut sim = Simulator::new(&netlist);
        for (words, mask) in patterns.iter_words() {
            let outs = sim.run_word(words);
            for lane in 0..8 {
                if mask >> lane & 1 == 0 {
                    continue;
                }
                let ins: Vec<bool> = words.iter().map(|w| w >> lane & 1 == 1).collect();
                let single = sim.run_single(&ins);
                for (o, w) in single.iter().zip(&outs) {
                    prop_assert_eq!(*o, w >> lane & 1 == 1);
                }
            }
        }
    }

    /// Netlist text round-trips through both supported formats.
    #[test]
    fn format_roundtrips(netlist in netlist_strategy()) {
        use split_manufacturing::netlist::parse::{bench, verilog};
        let lib = Library::nangate45();
        let b = bench::parse_bench("rt", &bench::write_bench(&netlist), &lib).expect("bench parse");
        prop_assert!(b.num_cells() >= netlist.num_cells()); // + alias buffers
        let v = verilog::parse_verilog(&verilog::write_verilog(&netlist), &lib).expect("verilog parse");
        prop_assert_eq!(v.num_cells(), b.num_cells());
        // Functional equality of the bench round-trip.
        let patterns = PatternSource::exhaustive(&netlist);
        let m = security_metrics(&netlist, &b, &patterns).expect("same ports");
        prop_assert_eq!(m.oer, 0.0);
    }
}
