//! End-to-end integration tests spanning every crate: generate → protect →
//! split → attack → score, asserting the paper's qualitative claims.

use split_manufacturing::attacks::{
    ccr_over_connections, crouting_attack, network_flow_attack, CroutingConfig, ProximityConfig,
};
use split_manufacturing::benchgen::iscas::{self, IscasProfile};
use split_manufacturing::core::baselines::original_layout;
use split_manufacturing::core::{protect, FlowConfig};
use split_manufacturing::layout::split_layout;
use split_manufacturing::sim::equiv::{check, Equivalence};

/// The headline claim (Tables 4/5): none of the randomized connections is
/// recovered, while the restored netlist is formally equivalent to the
/// original.
#[test]
fn protected_design_yields_zero_ccr_and_equivalent_restoration() {
    let profile = IscasProfile::c432();
    let design = iscas::generate(&profile, 11);
    let protected = protect(&design, &FlowConfig::iscas_default(11));

    // Restoration is exact.
    assert_eq!(
        check(&design, &protected.restored, 500_000).unwrap(),
        Equivalence::Equivalent
    );

    // Attack at every split layer the paper averages over.
    let swapped = protected.randomization.swapped_connections();
    assert!(!swapped.is_empty());
    for split_layer in [3u8, 4, 5] {
        let split = split_layout(
            &protected.randomization.erroneous,
            &protected.placement,
            &protected.feol_routing,
            split_layer,
        );
        let out = network_flow_attack(
            &design,
            &protected.randomization.erroneous,
            &protected.placement,
            &split,
            &ProximityConfig::default(),
        );
        let ccr = ccr_over_connections(&split, &out.pairs, &swapped);
        assert!(
            ccr <= 0.05,
            "split M{split_layer}: protected CCR should collapse, got {ccr}"
        );
        assert!(
            out.metrics.oer > 0.5,
            "split M{split_layer}: recovered netlist should misbehave, OER {}",
            out.metrics.oer
        );
    }
}

/// The contrast case: the same attack succeeds on an unprotected layout.
#[test]
fn unprotected_layout_leaks_majority_of_connections() {
    let design = iscas::generate(&IscasProfile::c432(), 11);
    let layout = original_layout(&design, 0.7, 11);
    let mut avg_ccr = 0.0;
    for split_layer in [3u8, 4, 5] {
        let split = split_layout(&design, &layout.placement, &layout.routing, split_layer);
        let out = network_flow_attack(
            &design,
            &design,
            &layout.placement,
            &split,
            &ProximityConfig::default(),
        );
        avg_ccr += out.ccr / 3.0;
    }
    assert!(
        avg_ccr > 0.6,
        "unprotected average CCR should be high, got {avg_ccr}"
    );
}

/// Zero die-area overhead and bounded power/delay cost (Fig. 6 claim).
#[test]
fn ppa_cost_is_controlled() {
    let design = iscas::generate(&IscasProfile::c880(), 5);
    let protected = protect(&design, &FlowConfig::iscas_default(5));
    assert_eq!(protected.ppa_overhead.area_pct, 0.0);
    assert!(
        protected.ppa_overhead.power_pct < 25.0,
        "power {}%",
        protected.ppa_overhead.power_pct
    );
    assert!(
        protected.ppa_overhead.delay_pct < 25.0,
        "delay {}%",
        protected.ppa_overhead.delay_pct
    );
}

/// Correction cells arrive in pairs and never overlap (Sec. 4 claims).
#[test]
fn correction_cells_are_paired_and_legal() {
    let design = iscas::generate(&IscasProfile::c432(), 3);
    let protected = protect(&design, &FlowConfig::iscas_default(3));
    assert_eq!(
        protected.correction_cells.len(),
        protected.randomization.swaps.len() * 2
    );
    assert!(
        split_manufacturing::core::correction::correction_cells_legal(&protected.correction_cells)
    );
    for cell in &protected.correction_cells {
        assert_eq!(cell.pin_layer, 6);
    }
}

/// crouting sees more vpins on the protected layout than on the original
/// (Table 3's direction).
#[test]
fn crouting_faces_larger_solution_space_on_protected_layout() {
    let design = iscas::generate(&IscasProfile::c880(), 7);
    let layout = original_layout(&design, 0.7, 7);
    let protected = protect(&design, &FlowConfig::iscas_default(7));
    let cfg = CroutingConfig::default();

    let split_orig = split_layout(&design, &layout.placement, &layout.routing, 5);
    let split_prop = split_layout(
        &protected.randomization.erroneous,
        &protected.placement,
        &protected.feol_routing,
        5,
    );
    let orig = crouting_attack(&design, &split_orig, &cfg);
    let prop = crouting_attack(&protected.randomization.erroneous, &split_prop, &cfg);
    // The erroneous placement reshuffles which ordinary nets are long, so
    // the vpin count moves both ways on small designs; the attack must
    // still face a comparable or larger problem (the paper's superblue
    // rows show a few-percent increase).
    assert!(
        prop.num_vpins as f64 >= orig.num_vpins as f64 * 0.7,
        "proposed {} vs original {} vpins",
        prop.num_vpins,
        orig.num_vpins
    );
    let els = |r: &split_manufacturing::attacks::CroutingReport| {
        r.boxes.last().map(|b| b.expected_list_size).unwrap_or(0.0)
    };
    assert!(
        els(&prop) >= els(&orig) * 0.8,
        "proposed E[LS] {} vs original {}",
        els(&prop),
        els(&orig)
    );
}

/// The whole pipeline is deterministic end to end for a fixed seed.
#[test]
fn pipeline_is_deterministic() {
    let design = iscas::generate(&IscasProfile::c432(), 2);
    let a = protect(&design, &FlowConfig::iscas_default(2));
    let b = protect(&design, &FlowConfig::iscas_default(2));
    assert_eq!(a.randomization.swaps, b.randomization.swaps);
    assert_eq!(
        a.feol_routing.via_counts().total(),
        b.feol_routing.via_counts().total()
    );
    assert_eq!(a.ppa.delay_ps, b.ppa.delay_ps);
}
