//! Reproduction of *"Raise Your Game for Split Manufacturing: Restoring
//! the True Functionality Through BEOL"* (Patnaik, Ashraf, Knechtel,
//! Sinanoglu — DAC 2018).
//!
//! Split manufacturing protects chip IP by letting an untrusted foundry
//! build only the FEOL (transistors + lower metal) while a trusted
//! facility finishes the BEOL (upper metal). Proximity attacks undermine
//! this: placement and routing leak the missing connections. The paper's
//! defense randomizes the netlist, places & routes the *erroneous* design,
//! and restores the true functionality only in the BEOL through virtual
//! correction cells — driving the attacker's correct-connection rate to 0%.
//!
//! This crate re-exports the whole stack:
//!
//! * [`netlist`] — gate-level netlists, Nangate-45-like library, parsers;
//! * [`sim`] — bit-parallel simulation, OER/HD metrics, SAT equivalence;
//! * [`layout`] — placement, 10-layer global routing, STA, power,
//!   FEOL/BEOL splitting (the Innovus stand-in);
//! * [`core`] — the protection flow, correction cells and baselines;
//! * [`attacks`] — the network-flow proximity attack and `crouting`;
//! * [`benchgen`] — deterministic ISCAS-85 / superblue-like generators;
//! * [`engine`] — the parallel experiment-campaign engine behind the
//!   `smctl` CLI: jobs, a work-stealing executor, a content-keyed
//!   bundle cache and deterministic JSON/CSV reporters.
//!
//! # Quickstart
//!
//! ```
//! use split_manufacturing::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A design to protect (the real c17 here; generators cover the rest).
//! let lib = Library::nangate45();
//! let design = parse_bench("c17", C17_BENCH, &lib)?;
//!
//! // 2. Run the protection flow: randomize, place & route the erroneous
//! //    netlist, lift through correction cells, restore in the BEOL.
//! let protected = protect(&design, &FlowConfig::iscas_default(42));
//! assert_eq!(protected.ppa_overhead.area_pct, 0.0); // zero area cost
//!
//! // 3. Attack the FEOL the untrusted fab would see.
//! let split = split_layout(
//!     &protected.randomization.erroneous,
//!     &protected.placement,
//!     &protected.feol_routing,
//!     4,
//! );
//! let outcome = network_flow_attack(
//!     &design,
//!     &protected.randomization.erroneous,
//!     &protected.placement,
//!     &split,
//!     &ProximityConfig::default(),
//! );
//! // The randomized nets are never recovered correctly.
//! # let _ = outcome;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use sm_attacks as attacks;
pub use sm_benchgen as benchgen;
pub use sm_core as core;
pub use sm_engine as engine;
pub use sm_layout as layout;
pub use sm_netlist as netlist;
pub use sm_sim as sim;

/// The types most workflows need, in one import.
pub mod prelude {
    pub use sm_attacks::{crouting_attack, network_flow_attack, CroutingConfig, ProximityConfig};
    pub use sm_benchgen::{IscasProfile, SuperblueProfile};
    pub use sm_core::{protect, FlowConfig, ProtectedDesign, RandomizeConfig};
    pub use sm_engine::{
        run_sweep, ArtifactCache, AttackKind, Executor, ExecutorConfig, SweepSpec,
    };
    pub use sm_layout::{
        split_layout, Floorplan, PlacementEngine, RouteOptions, Router, Technology,
    };
    pub use sm_netlist::parse::bench::{parse_bench, C17_BENCH};
    pub use sm_netlist::{GateFn, Library, Netlist, NetlistBuilder};
    pub use sm_sim::{security_metrics, PatternSource, Simulator};
}
